"""Cells: the unit of storage, and payload size estimation.

A cell holds an opaque value plus a *cell version* -- a counter that
increases on every write to the cell.  The cell version is the load-link
token: a ``PutIfVersion`` succeeds only when the cell version still equals
the version observed by the earlier ``Get``.  Because the counter is
monotonic, a value that was changed and changed back still fails the
conditional write, which is exactly the ABA immunity the paper requires of
LL/SC (Section 4.1).
"""

from __future__ import annotations

from typing import Any


class Cell:
    """One key's stored value and its write-stamp."""

    __slots__ = ("value", "version")

    def __init__(self, value: Any, version: int):
        self.value = value
        self.version = version

    def __repr__(self) -> str:
        return f"Cell(v{self.version}, {self.value!r})"


def approx_size(value: Any) -> int:
    """Estimate the serialized size of ``value`` in bytes.

    The simulator charges bandwidth by message size; an estimate within a
    factor of two is plenty.  Objects can opt in to an exact answer by
    defining ``approx_size()`` (records and index nodes do).

    This runs for every key and payload the simulated fabric ships, so
    the common scalar and row-tuple shapes take exact-type fast paths
    (a plain ``int``/``str``/``tuple`` cannot define ``approx_size``);
    everything else falls back to the generic protocol below.
    """
    cls = value.__class__
    if cls is int:
        return 8
    if cls is str:
        return len(value)
    if cls is tuple or cls is list:
        total = 8
        for item in value:
            icls = item.__class__
            if icls is int:
                total += 8
            elif icls is str:
                total += len(item)
            elif icls is float:
                total += 8
            else:
                total += approx_size(item)
        return total
    if cls is float:
        return 8
    if value is None:
        return 1
    method = getattr(value, "approx_size", None)
    if method is not None:
        return method()
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(approx_size(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(
            approx_size(k) + approx_size(v) for k, v in value.items()
        )
    return 64
