"""The distributed storage system: routing, execution, replication.

:class:`StorageCluster` wires storage nodes, the partition map, and the
hash partitioner into the "distributed record store" of the paper's
architecture (Figure 3).  It executes the storage requests defined in
:mod:`repro.effects`:

* single-key operations run on the partition's *master* replica and, when
  they modify state, are synchronously copied to the backups before the
  request is acknowledged (in-memory storage must replicate synchronously
  to be durable, Section 4.4.2);
* scans fan out to every master holding a slice of the space;
* batches group single-key operations into one round trip.

Under the direct runner the cluster executes requests itself via
:meth:`execute`.  The simulation driver instead uses :meth:`routing` to
learn which node serves a request and :meth:`apply` to run it at the right
simulated instant.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import effects
from repro.dispatch.core import KIND_BATCH, KIND_SCAN, kind_of
from repro.elastic.topology import PlacementSpec, Topology
from repro.errors import InvalidState, NodeUnavailable
from repro.store.cell import approx_size
from repro.store.node import StorageNode
from repro.store.partition import PartitionMap


class OpRouting:
    """Where a request executes: partition id and master node id."""

    __slots__ = ("partition_id", "node_id", "is_write")

    def __init__(self, partition_id: int, node_id: int, is_write: bool):
        self.partition_id = partition_id
        self.node_id = node_id
        self.is_write = is_write


_WRITE_OPS = (
    effects.Put,
    effects.PutIfVersion,
    effects.Delete,
    effects.DeleteIfVersion,
    effects.Increment,
)

# Exact-class sets let the hot routing/apply paths replace isinstance
# chains with one dict lookup; subclasses still take the generic path.
_WRITE_CLASSES = frozenset(_WRITE_OPS)
_READ_CLASSES = frozenset((effects.Get, effects.Scan))

_APPLY_DISPATCH = {
    effects.Get: lambda node, pid, op: node.do_get(pid, op.space, op.key),
    effects.PutIfVersion: lambda node, pid, op: node.do_put_if_version(
        pid, op.space, op.key, op.value, op.expected_version
    ),
    effects.Put: lambda node, pid, op: node.do_put(
        pid, op.space, op.key, op.value
    ),
    effects.Delete: lambda node, pid, op: node.do_delete(pid, op.space, op.key),
    effects.DeleteIfVersion: lambda node, pid, op: node.do_delete_if_version(
        pid, op.space, op.key, op.expected_version
    ),
    effects.Increment: lambda node, pid, op: node.do_increment(
        pid, op.space, op.key, op.delta
    ),
}


class StorageCluster:
    """A set of storage nodes behind a partition map."""

    def __init__(
        self,
        n_nodes: int,
        replication_factor: int = 1,
        partitions_per_node: int = 8,
        capacity_bytes: Optional[int] = None,
        service_us_read: float = 1.2,
        service_us_write: float = 1.8,
        placement: Union[str, PlacementSpec] = "hash",
    ):
        if n_nodes < 1:
            raise InvalidState("need at least one storage node")
        self.replication_factor = replication_factor
        # replica cell copies shipped to backups (repro.obs fan-out gauge)
        self.replication_copies = 0
        self._default_capacity = capacity_bytes
        self._service_us_read = service_us_read
        self._service_us_write = service_us_write
        self.nodes: Dict[int, StorageNode] = {
            node_id: StorageNode(
                node_id,
                capacity_bytes=capacity_bytes,
                service_us_read=service_us_read,
                service_us_write=service_us_write,
            )
            for node_id in range(n_nodes)
        }
        spec = PlacementSpec.parse(placement)
        n_partitions = spec.partitions_for(n_nodes, partitions_per_node)
        self.partitioner = spec.make_partitioner(n_partitions)
        self.partition_map = PartitionMap(
            n_partitions, list(self.nodes.keys()), replication_factor
        )
        # The versioned ownership layer (repro.elastic) wraps the SAME
        # partitioner/partition-map objects, so the static routing paths
        # above stay byte-identical when no elastic operation ever runs.
        self.topology = Topology(self.partitioner, self.partition_map, spec)
        for partition_id in range(n_partitions):
            for node_id in self.partition_map.replicas_of(partition_id):
                self.nodes[node_id].host_partition(partition_id)

    # -- routing -----------------------------------------------------------

    def partition_of(self, key: Any) -> int:
        return self.partitioner.partition_of(key)

    def master_node(self, partition_id: int) -> StorageNode:
        node = self.nodes[self.partition_map.master_of(partition_id)]
        if not node.alive:
            raise NodeUnavailable(
                f"master of partition {partition_id} (node {node.node_id}) is down"
            )
        return node

    def routing(self, op: effects.StoreRequest) -> OpRouting:
        """Routing decision for one single-key request."""
        partition_id = self.partitioner.partition_of(op.key)
        master = self.partition_map.assignments[partition_id].replicas[0]
        cls = op.__class__
        if cls in _WRITE_CLASSES:
            is_write = True
        elif cls in _READ_CLASSES:
            is_write = False
        else:
            is_write = isinstance(op, _WRITE_OPS)
        return OpRouting(partition_id, master, is_write)

    def scan_routing(self, op: effects.Scan) -> List[Tuple[int, int]]:
        """(partition_id, master_node_id) pairs a scan must visit."""
        return [
            (pid, self.partition_map.master_of(pid))
            for pid in range(self.partitioner.n_partitions)
        ]

    # -- execution -----------------------------------------------------------

    def execute(self, op: effects.Request) -> Any:
        """Execute a request synchronously (direct mode).

        Classification is the shared :func:`repro.dispatch.core.kind_of`
        (one dict lookup for the exact effect classes).
        """
        kind = kind_of(op)
        if kind == KIND_BATCH:
            return [self.execute(sub) for sub in op.ops]
        if kind == KIND_SCAN:
            return self.execute_scan(op)
        routing = self.routing(op)
        result, _size = self.apply(op, routing.partition_id, routing.node_id)
        if routing.is_write:
            self.replicate(op, routing.partition_id)
        return result

    def apply(
        self, op: effects.StoreRequest, partition_id: int, node_id: int
    ) -> Tuple[Any, int]:
        """Run a single-key op on one node.  Returns (result, resp_size)."""
        handler = _APPLY_DISPATCH.get(op.__class__)
        if handler is not None:
            return handler(self.nodes[node_id], partition_id, op)
        return self._apply_slow(op, partition_id, node_id)

    def _apply_slow(
        self, op: effects.StoreRequest, partition_id: int, node_id: int
    ) -> Tuple[Any, int]:
        """isinstance fallback for subclassed request types."""
        node = self.nodes[node_id]
        if isinstance(op, effects.Get):
            return node.do_get(partition_id, op.space, op.key)
        if isinstance(op, effects.PutIfVersion):
            return node.do_put_if_version(
                partition_id, op.space, op.key, op.value, op.expected_version
            )
        if isinstance(op, effects.Put):
            return node.do_put(partition_id, op.space, op.key, op.value)
        if isinstance(op, effects.Delete):
            return node.do_delete(partition_id, op.space, op.key)
        if isinstance(op, effects.DeleteIfVersion):
            return node.do_delete_if_version(
                partition_id, op.space, op.key, op.expected_version
            )
        if isinstance(op, effects.Increment):
            return node.do_increment(partition_id, op.space, op.key, op.delta)
        raise TypeError(f"not a single-key storage op: {op!r}")

    def execute_scan(self, op: effects.Scan) -> List[Tuple[Any, Any, int]]:
        """Scan every partition and merge the sorted slices."""
        rows: List[Tuple[Any, Any, int]] = []
        for partition_id, node_id in self.scan_routing(op):
            node = self.nodes[node_id]
            if not node.alive:
                raise NodeUnavailable(f"storage node {node_id} is down")
            slice_rows, _ = node.do_scan(
                partition_id, op.space, op.start, op.end, op.limit,
                snapshot=op.snapshot, scan_filter=op.scan_filter,
                projection=op.projection,
            )
            rows.extend(slice_rows)
        rows.sort(key=lambda row: row[0])
        if op.limit is not None:
            rows = rows[: op.limit]
        return rows

    # -- replication -----------------------------------------------------------

    def replicate(self, op: effects.StoreRequest, partition_id: int) -> None:
        """Synchronously copy the op's cell to every backup replica.

        Mirrors RAMCloud's behaviour: the master acknowledges a write only
        after the backups hold it.  Timing is accounted by the simulation
        driver; here we only install the state.
        """
        backups = self.partition_map.backups_of(partition_id)
        if not backups:
            return
        master = self.nodes[self.partition_map.master_of(partition_id)]
        cells = master.partition(partition_id).space(op.space)
        cell = cells.get(op.key)
        for backup_id in backups:
            backup = self.nodes[backup_id]
            if backup.alive:
                backup.copy_cell(partition_id, op.space, op.key, cell)
                self.replication_copies += 1

    # -- sizing (used by the simulation driver) --------------------------------

    def request_size(self, op: effects.StoreRequest) -> int:
        base = 24 + approx_size(op.key)
        cls = op.__class__
        if (
            cls is effects.Put
            or cls is effects.PutIfVersion
            or isinstance(op, (effects.Put, effects.PutIfVersion))
        ):
            return base + approx_size(op.value)
        return base

    # -- introspection -----------------------------------------------------------

    def live_nodes(self) -> List[int]:
        return [node_id for node_id, node in self.nodes.items() if node.alive]

    def total_bytes(self) -> int:
        return sum(node.bytes_used for node in self.nodes.values())

    def create_node(
        self, capacity_bytes: Optional[int] = None
    ) -> StorageNode:
        """Attach a fresh, empty storage node and register it with the
        topology (epoch bump).  The node owns nothing until a rebalance
        assigns it partitions -- :class:`repro.api.admin.ClusterAdmin`
        and :class:`repro.elastic.ElasticCoordinator` pair this with a
        migration."""
        node_id = max(self.nodes.keys()) + 1 if self.nodes else 0
        node = StorageNode(
            node_id,
            capacity_bytes=(
                capacity_bytes if capacity_bytes is not None
                else self._default_capacity
            ),
            service_us_read=self._service_us_read,
            service_us_write=self._service_us_write,
        )
        self.nodes[node_id] = node
        self.topology.add_node(node_id)
        return node

    def detach_node(self, node_id: int) -> StorageNode:
        """Remove a drained node from the cluster (it must host nothing)."""
        node = self.nodes.get(node_id)
        if node is None:
            raise InvalidState(f"no storage node {node_id}")
        if node.partitions:
            raise InvalidState(
                f"storage node {node_id} still hosts "
                f"{len(node.partitions)} partition(s); drain first"
            )
        if node_id in self.partition_map.node_ids:
            self.topology.remove_node(node_id)
        return self.nodes.pop(node_id)

    def add_node(
        self, capacity_bytes: Optional[int] = None
    ) -> StorageNode:
        """Deprecated: attach a storage node by mutating the cluster.

        Use ``db.admin().add_storage_node()`` (the
        :class:`repro.api.admin.ClusterAdmin` surface), which also
        rebalances partitions onto the new node.  This shim only
        registers the (empty) node with the topology.
        """
        warnings.warn(
            "StorageCluster.add_node() is deprecated; use "
            "db.admin().add_storage_node() which also rebalances "
            "partitions onto the new node",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.create_node(capacity_bytes)
