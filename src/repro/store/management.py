"""Management node: failure detection and storage fail-over.

The paper (Section 4.4) assigns the management node three jobs for the
storage layer: detect failures (an eventually-perfect, timeout-based
detector), fail partitions over to their replicas, and restore the
replication level afterwards.  Only one recovery process runs at a time,
but a single recovery handles any number of simultaneous node failures.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import InvalidState
from repro.store.cluster import StorageCluster


class FailureDetector:
    """Timeout-based eventually-perfect failure detector.

    Nodes are expected to heartbeat every ``heartbeat_us``; a node whose
    last heartbeat is older than ``timeout_us`` is suspected.  Under the
    direct runner, tests call :meth:`heartbeat`/:meth:`suspects`
    explicitly; under simulation a background process does.
    """

    def __init__(self, timeout_us: float = 500_000.0):
        self.timeout_us = timeout_us
        self.last_heartbeat: Dict[int, float] = {}

    def heartbeat(self, node_id: int, now: float) -> None:
        self.last_heartbeat[node_id] = now

    def forget(self, node_id: int) -> None:
        self.last_heartbeat.pop(node_id, None)

    def suspects(self, now: float) -> List[int]:
        return [
            node_id
            for node_id, seen in self.last_heartbeat.items()
            if now - seen > self.timeout_us
        ]


class ManagementNode:
    """Monitors the storage cluster and repairs it after node failures."""

    def __init__(self, cluster: StorageCluster):
        self.cluster = cluster
        self.detector = FailureDetector()
        self.recovery_running = False
        self.recoveries_completed = 0

    def handle_node_failure(self, node_id: int) -> List[int]:
        """Fail over every partition the dead node hosted.

        Masters move to a surviving backup; afterwards the replication
        factor is restored by copying each degraded partition from a
        surviving replica to a fresh host.  Returns the list of degraded
        partition ids (useful for assertions in tests).
        """
        if self.recovery_running:
            raise InvalidState("a recovery process is already running")
        self.recovery_running = True
        try:
            node = self.cluster.nodes.get(node_id)
            if node is not None and node.alive:
                node.crash()
            self.detector.forget(node_id)
            # Ownership changes go through the versioned topology layer
            # (epoch bump; in-flight handoffs touching the dead node are
            # aborted before the generic fail-over promotes backups).
            degraded = self.cluster.topology.fail_over(
                node_id, self.cluster.live_nodes()
            )
            self._restore_replication(degraded)
            self.recoveries_completed += 1
            return degraded
        finally:
            self.recovery_running = False

    def _restore_replication(self, degraded_partitions: List[int]) -> None:
        pmap = self.cluster.partition_map
        live = self.cluster.live_nodes()
        for partition_id in degraded_partitions:
            while len(pmap.replicas_of(partition_id)) < self.cluster.replication_factor:
                new_host_id = pmap.pick_new_host(partition_id, live)
                if new_host_id is None:
                    # Not enough live nodes to restore RF; stay degraded.
                    break
                source_id = pmap.master_of(partition_id)
                source = self.cluster.nodes[source_id]
                clone = source.snapshot_partition(partition_id)
                self.cluster.nodes[new_host_id].install_partition(clone)
                self.cluster.topology.add_replica(partition_id, new_host_id)

    def check_heartbeats(self, now: float) -> List[int]:
        """Run the detector; fail over every suspected node.  Returns the
        node ids that were recovered."""
        recovered = []
        for node_id in self.detector.suspects(now):
            self.handle_node_failure(node_id)
            recovered.append(node_id)
        return recovered
