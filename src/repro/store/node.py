"""A single storage node (SN): partition-local state and op execution.

A storage node owns a set of partitions.  For each partition it keeps, per
*space* (a namespace such as ``data``, ``index``, ``txlog``, ``meta``), a
plain dict of key -> :class:`Cell` plus a sorted-key cache used by scans.

All operations on a node are atomic with respect to each other: under the
direct runner they execute synchronously, and under the simulator every
operation executes at a single event timestamp, which models the
linearizable single-key operations RAMCloud provides.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import KeyNotFound, NoCapacity, NodeUnavailable, WrongOwner
from repro.store.cell import Cell, approx_size

SpaceDict = Dict[Any, Cell]


class PartitionStore:
    """Data for one partition hosted by a node (master or backup copy)."""

    __slots__ = ("partition_id", "spaces", "_sorted_keys", "bytes_used")

    def __init__(self, partition_id: int):
        self.partition_id = partition_id
        self.spaces: Dict[str, SpaceDict] = {}
        # sorted key list per space, rebuilt lazily for scans
        self._sorted_keys: Dict[str, Optional[List[Any]]] = {}
        self.bytes_used = 0

    def space(self, name: str) -> SpaceDict:
        existing = self.spaces.get(name)
        if existing is None:
            existing = {}
            self.spaces[name] = existing
            self._sorted_keys[name] = None
        return existing

    def invalidate_scan_cache(self, space_name: str) -> None:
        self._sorted_keys[space_name] = None

    def sorted_keys(self, space_name: str) -> List[Any]:
        cached = self._sorted_keys.get(space_name)
        if cached is None:
            cached = sorted(self.space(space_name).keys())
            self._sorted_keys[space_name] = cached
        return cached


class StorageNode:
    """One storage server with its hosted partitions and capacity limit."""

    def __init__(
        self,
        node_id: int,
        capacity_bytes: Optional[int] = None,
        service_us_read: float = 1.2,
        service_us_write: float = 1.8,
    ):
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self.service_us_read = service_us_read
        self.service_us_write = service_us_write
        self.alive = True
        self.partitions: Dict[int, PartitionStore] = {}
        # Partitions that migrated away (pid -> topology epoch of the
        # handoff): requests for them raise WrongOwner, not KeyNotFound,
        # so the dispatch layer re-routes instead of treating the key as
        # absent.  Empty on the static-topology path.
        self.moved_out: Dict[int, int] = {}
        self.bytes_used = 0
        # op accounting, harvested by repro.obs collectors at snapshot time
        self.ops_read = 0
        self.ops_write = 0
        self.ops_scan = 0
        # simulation bookkeeping: per-worker availability (set by sim driver)
        self.sim_state: Dict[str, Any] = {}

    # -- partition hosting -------------------------------------------------

    def host_partition(self, partition_id: int) -> PartitionStore:
        store = self.partitions.get(partition_id)
        if store is None:
            if self.moved_out:
                self.moved_out.pop(partition_id, None)
            store = PartitionStore(partition_id)
            self.partitions[partition_id] = store
        return store

    def drop_partition(self, partition_id: int) -> None:
        store = self.partitions.pop(partition_id, None)
        if store is not None:
            self.bytes_used -= store.bytes_used

    def release_partition(self, partition_id: int, owner_epoch: int) -> None:
        """Drop a partition that migrated away, leaving a moved-out
        tombstone so stragglers get :class:`WrongOwner` (re-routable)
        instead of :class:`KeyNotFound` (a data statement)."""
        self.drop_partition(partition_id)
        self.moved_out[partition_id] = owner_epoch

    def partition(self, partition_id: int) -> PartitionStore:
        try:
            return self.partitions[partition_id]
        except KeyError:
            if partition_id in self.moved_out:
                raise WrongOwner(
                    partition_id, self.node_id, self.moved_out[partition_id]
                ) from None
            raise KeyNotFound(
                f"node {self.node_id} does not host partition {partition_id}"
            ) from None

    # -- failure -----------------------------------------------------------

    def crash(self) -> None:
        """Simulate a crash-stop failure: data is volatile and lost."""
        self.alive = False
        self.partitions = {}
        self.moved_out = {}
        self.bytes_used = 0

    def restart(self) -> None:
        """Bring the node back empty; the management node must re-add it."""
        self.alive = True
        self.moved_out = {}

    def _check_alive(self) -> None:
        if not self.alive:
            raise NodeUnavailable(f"storage node {self.node_id} is down")

    # -- operations ----------------------------------------------------------
    # Each returns (result, response_size_estimate, is_write).

    def do_get(self, partition_id: int, space: str, key: Any) -> Tuple[Any, int]:
        # Hottest node op: inline the alive/partition/space lookups and
        # avoid materializing an empty space dict for a miss on an unseen
        # space (a pure read has no reason to allocate).
        if not self.alive:
            self._check_alive()
        self.ops_read += 1
        store = self.partitions.get(partition_id)
        if store is None:
            self.partition(partition_id)  # raises KeyNotFound
        cells = store.spaces.get(space)
        cell = cells.get(key) if cells is not None else None
        if cell is None:
            return (None, 0), 8
        return (cell.value, cell.version), 16 + approx_size(cell.value)

    def do_put(
        self, partition_id: int, space: str, key: Any, value: Any
    ) -> Tuple[int, int]:
        self._check_alive()
        self.ops_write += 1
        store = self.partition(partition_id)
        cells = store.space(space)
        cell = cells.get(key)
        if cell is None:
            self._charge(store, approx_size(value) + approx_size(key))
            cells[key] = Cell(value, 1)
            store.invalidate_scan_cache(space)
            return 1, 16
        # Replacing in place: the key's size cancels out of the delta.
        self._charge(store, approx_size(value) - approx_size(cell.value))
        cell.value = value
        cell.version += 1
        return cell.version, 16

    def do_put_if_version(
        self,
        partition_id: int,
        space: str,
        key: Any,
        value: Any,
        expected_version: int,
    ) -> Tuple[Tuple[bool, int], int]:
        """Store-conditional: apply only if the cell version matches."""
        self._check_alive()
        self.ops_write += 1
        store = self.partition(partition_id)
        cells = store.space(space)
        cell = cells.get(key)
        current = 0 if cell is None else cell.version
        if current != expected_version:
            return (False, current), 16
        if cell is None:
            self._charge(store, approx_size(value) + approx_size(key))
            cells[key] = Cell(value, 1)
            store.invalidate_scan_cache(space)
            return (True, 1), 16
        self._charge(store, approx_size(value) - approx_size(cell.value))
        cell.value = value
        cell.version += 1
        return (True, cell.version), 16

    def do_delete(self, partition_id: int, space: str, key: Any) -> Tuple[bool, int]:
        self._check_alive()
        self.ops_write += 1
        store = self.partition(partition_id)
        cells = store.space(space)
        cell = cells.pop(key, None)
        if cell is None:
            return False, 8
        self._charge(store, -(approx_size(cell.value) + approx_size(key)))
        store.invalidate_scan_cache(space)
        return True, 8

    def do_delete_if_version(
        self, partition_id: int, space: str, key: Any, expected_version: int
    ) -> Tuple[Tuple[bool, int], int]:
        self._check_alive()
        self.ops_write += 1
        store = self.partition(partition_id)
        cells = store.space(space)
        cell = cells.get(key)
        current = 0 if cell is None else cell.version
        if current != expected_version or cell is None:
            return (False, current), 8
        del cells[key]
        self._charge(store, -(approx_size(cell.value) + approx_size(key)))
        store.invalidate_scan_cache(space)
        return (True, current), 8

    def do_increment(
        self, partition_id: int, space: str, key: Any, delta: int
    ) -> Tuple[int, int]:
        self._check_alive()
        self.ops_write += 1
        store = self.partition(partition_id)
        cells = store.space(space)
        cell = cells.get(key)
        if cell is None:
            self._charge(store, 16)
            cells[key] = Cell(delta, 1)
            store.invalidate_scan_cache(space)
            return delta, 16
        cell.value += delta
        cell.version += 1
        return cell.value, 16

    def do_scan(
        self,
        partition_id: int,
        space: str,
        start: Any,
        end: Any,
        limit: Optional[int],
        snapshot: Any = None,
        scan_filter: Any = None,
        projection: Any = None,
    ) -> Tuple[List[Tuple[Any, Any, int]], int]:
        """Partition-local range scan: start <= key < end, sorted.

        With ``snapshot``, the node resolves the visible version of every
        record and ships payload rows (optionally filtered/projected) --
        the storage-side operator push-down of Section 5.2.
        """
        self._check_alive()
        self.ops_scan += 1
        store = self.partition(partition_id)
        cells = store.space(space)
        keys = store.sorted_keys(space)
        lo = 0 if start is None else bisect.bisect_left(keys, start)
        hi = len(keys) if end is None else bisect.bisect_left(keys, end)
        out: List[Tuple[Any, Any, int]] = []
        size = 8
        for key in keys[lo:hi]:
            cell = cells.get(key)
            if cell is None:
                continue
            if snapshot is None:
                out.append((key, cell.value, cell.version))
                size += 16 + approx_size(cell.value)
            else:
                # visible_payload resolves tombstones to None without
                # allocating a Version wrapper (slab fast path).
                row = cell.value.visible_payload(snapshot)
                if row is None:
                    continue
                if scan_filter is not None and not scan_filter.matches(row):
                    continue
                if projection is not None:
                    row = projection.apply(row)
                out.append((key, row, cell.version))
                size += 16 + approx_size(row)
            if limit is not None and len(out) >= limit:
                break
        return out, size

    # -- replication support ------------------------------------------------

    def copy_cell(self, partition_id: int, space: str, key: Any, cell: Optional[Cell]) -> None:
        """Install a replica copy of a cell (None deletes)."""
        self._check_alive()
        store = self.host_partition(partition_id)
        cells = store.space(space)
        old = cells.get(key)
        if old is not None:
            self._charge(store, -(approx_size(old.value) + approx_size(key)))
        if cell is None:
            cells.pop(key, None)
        else:
            cells[key] = Cell(cell.value, cell.version)
            self._charge(store, approx_size(cell.value) + approx_size(key))
        store.invalidate_scan_cache(space)

    def snapshot_partition(self, partition_id: int) -> PartitionStore:
        """Deep copy a hosted partition (used to restore the replication
        factor after a failure)."""
        self._check_alive()
        source = self.partition(partition_id)
        clone = PartitionStore(partition_id)
        for space_name, cells in source.spaces.items():
            target = clone.space(space_name)
            for key, cell in cells.items():
                target[key] = Cell(cell.value, cell.version)
        clone.bytes_used = source.bytes_used
        return clone

    def install_partition(self, store: PartitionStore) -> None:
        self._check_alive()
        self.drop_partition(store.partition_id)
        self.partitions[store.partition_id] = store
        self.bytes_used += store.bytes_used

    # -- internals -----------------------------------------------------------

    def _charge(self, store: PartitionStore, delta: int) -> None:
        if (
            delta > 0
            and self.capacity_bytes is not None
            and self.bytes_used + delta > self.capacity_bytes
        ):
            raise NoCapacity(
                f"storage node {self.node_id} full "
                f"({self.bytes_used + delta} > {self.capacity_bytes} bytes)"
            )
        store.bytes_used += delta
        self.bytes_used += delta

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"<StorageNode {self.node_id} {state} "
            f"{len(self.partitions)} partitions {self.bytes_used}B>"
        )
