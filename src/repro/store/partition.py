"""Partitioning of the key space across storage nodes.

The store splits every space's key population into a fixed number of
partitions.  Each partition has one *master* replica (all requests go to
the master, as in RAMCloud) and ``replication_factor - 1`` backups on
distinct nodes.  The :class:`PartitionMap` is owned by the management node;
processing nodes look partition locations up there and then talk to the
master directly (the paper's "lookup service").

Partition assignment uses a deterministic hash so that runs are
reproducible regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import InvalidState, NodeUnavailable

_FNV_PRIME = 1099511628211
_FNV_OFFSET = 14695981039346656037
_MASK = (1 << 64) - 1


def stable_hash(key: Any) -> int:
    """Deterministic 64-bit hash for keys (ints, strings, nested tuples).

    Routing hashes every key of every request, so the common exact types
    (int, tuple-of-scalars, str) are dispatched on ``__class__`` before
    the general isinstance ladder.  Both paths compute identical hashes.
    """
    cls = key.__class__
    if cls is int:
        return (key * 0x9E3779B97F4A7C15) & _MASK
    if cls is tuple:
        acc = _FNV_OFFSET
        for part in key:
            pcls = part.__class__
            if pcls is int:
                part_hash = (part * 0x9E3779B97F4A7C15) & _MASK
            elif pcls is str:
                part_hash = (
                    zlib.crc32(part.encode("utf-8")) * 0x9E3779B97F4A7C15 & _MASK
                )
            else:
                part_hash = stable_hash(part)
            acc = (acc ^ part_hash) * _FNV_PRIME & _MASK
        return acc
    if cls is str:
        return zlib.crc32(key.encode("utf-8")) * 0x9E3779B97F4A7C15 & _MASK
    if isinstance(key, bool):
        return 1 if key else 2
    if isinstance(key, int):
        return (key * 0x9E3779B97F4A7C15) & _MASK
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8")) * 0x9E3779B97F4A7C15 & _MASK
    if isinstance(key, bytes):
        return zlib.crc32(key) * 0x9E3779B97F4A7C15 & _MASK
    if isinstance(key, tuple):
        acc = _FNV_OFFSET
        for part in key:
            acc = (acc ^ stable_hash(part)) * _FNV_PRIME & _MASK
        return acc
    if key is None:
        return 3
    raise TypeError(f"unhashable key type for partitioning: {type(key)!r}")


class HashPartitioner:
    """Maps keys to partition ids by deterministic hash."""

    def __init__(self, n_partitions: int):
        if n_partitions < 1:
            raise InvalidState("need at least one partition")
        self.n_partitions = n_partitions

    def partition_of(self, key: Any) -> int:
        return stable_hash(key) % self.n_partitions


class RangePartitioner:
    """Maps keys to contiguous slices of the 64-bit hash ring.

    Partition ``p`` owns hashes in ``[p * 2^64 / n, (p+1) * 2^64 / n)``,
    so neighbouring partitions cover adjacent hash ranges -- the
    range-split placement of :mod:`repro.elastic` (``placement="range"``).
    Keys themselves are mixed-type (ints, tuples, strings), so the split
    is over the deterministic :func:`stable_hash`, not raw key order.
    Exposes the same ``n_partitions`` / ``partition_of`` surface as
    :class:`HashPartitioner`.
    """

    def __init__(self, n_partitions: int):
        if n_partitions < 1:
            raise InvalidState("need at least one partition")
        self.n_partitions = n_partitions

    def partition_of(self, key: Any) -> int:
        return (stable_hash(key) * self.n_partitions) >> 64


class PartitionAssignment:
    """Replica placement of a single partition: master first."""

    __slots__ = ("partition_id", "replicas")

    def __init__(self, partition_id: int, replicas: List[int]):
        self.partition_id = partition_id
        self.replicas = replicas  # node ids; replicas[0] is the master

    @property
    def master(self) -> int:
        return self.replicas[0]

    @property
    def backups(self) -> List[int]:
        return self.replicas[1:]


class PartitionMap:
    """Replica placement for every partition.

    Placement is round-robin with offset backups, giving every node an
    equal share of masters and backups -- the balanced layout a management
    node maintains in the background.
    """

    def __init__(
        self,
        n_partitions: int,
        node_ids: Sequence[int],
        replication_factor: int = 1,
    ):
        if replication_factor < 1:
            raise InvalidState("replication factor must be >= 1")
        if replication_factor > len(node_ids):
            raise InvalidState(
                f"replication factor {replication_factor} exceeds "
                f"node count {len(node_ids)}"
            )
        self.n_partitions = n_partitions
        self.replication_factor = replication_factor
        self.node_ids = list(node_ids)
        self.assignments: Dict[int, PartitionAssignment] = {}
        n_nodes = len(self.node_ids)
        for pid in range(n_partitions):
            replicas = [
                self.node_ids[(pid + offset) % n_nodes]
                for offset in range(replication_factor)
            ]
            self.assignments[pid] = PartitionAssignment(pid, replicas)

    def master_of(self, partition_id: int) -> int:
        return self.assignments[partition_id].master

    def backups_of(self, partition_id: int) -> List[int]:
        return self.assignments[partition_id].backups

    def replicas_of(self, partition_id: int) -> List[int]:
        return list(self.assignments[partition_id].replicas)

    def partitions_mastered_by(self, node_id: int) -> List[int]:
        return [
            pid
            for pid, assignment in self.assignments.items()
            if assignment.master == node_id
        ]

    def partitions_hosted_by(self, node_id: int) -> List[int]:
        return [
            pid
            for pid, assignment in self.assignments.items()
            if node_id in assignment.replicas
        ]

    def fail_over(self, dead_node_id: int, live_node_ids: Sequence[int]) -> List[int]:
        """Remove ``dead_node_id`` from every assignment, promoting the
        first surviving backup to master.

        Returns the partition ids whose replica set shrank below the
        replication factor (the management node re-replicates those).
        Raises :class:`NodeUnavailable` if some partition loses its last
        replica -- with in-memory storage that is unrecoverable data loss.
        """
        degraded: List[int] = []
        for pid, assignment in self.assignments.items():
            if dead_node_id not in assignment.replicas:
                continue
            assignment.replicas = [
                node for node in assignment.replicas if node != dead_node_id
            ]
            if not assignment.replicas:
                raise NodeUnavailable(
                    f"partition {pid} lost its last replica (node {dead_node_id})"
                )
            degraded.append(pid)
        if dead_node_id in self.node_ids:
            self.node_ids.remove(dead_node_id)
        return degraded

    def add_replica(self, partition_id: int, node_id: int) -> None:
        assignment = self.assignments[partition_id]
        if node_id in assignment.replicas:
            raise InvalidState(
                f"node {node_id} already hosts partition {partition_id}"
            )
        assignment.replicas.append(node_id)

    def pick_new_host(
        self, partition_id: int, candidates: Sequence[int]
    ) -> Optional[int]:
        """Choose the least-loaded candidate not already hosting the
        partition (load = partitions hosted)."""
        current = set(self.assignments[partition_id].replicas)
        eligible = [node for node in candidates if node not in current]
        if not eligible:
            return None
        load = {node: 0 for node in eligible}
        for assignment in self.assignments.values():
            for node in assignment.replicas:
                if node in load:
                    load[node] += 1
        return min(eligible, key=lambda node: (load[node], node))
