"""Operator push-down into the storage layer (paper Section 5.2).

For mixed workloads the paper proposes executing simple relational
operators (selection, projection) inside the storage nodes so that
analytical scans ship *result* rows instead of whole tables.  This
module defines the shippable filter: a conjunction of column/constant
comparisons evaluated against the snapshot-visible version of each
record during a scan.

The storage layer stays generic: it only needs the value to offer
``latest_visible(snapshot)`` (which :class:`repro.core.record.
VersionedRecord` does) and evaluates the filter on plain row tuples.
"""

from __future__ import annotations

import operator
from typing import Any, Optional, Sequence, Tuple

from repro.errors import InvalidState

_OPERATORS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class ScanFilter:
    """A conjunction of ``row[position] <op> constant`` predicates.

    NULL (None) never satisfies a comparison, mirroring SQL semantics.
    """

    __slots__ = ("conjuncts",)

    def __init__(self, conjuncts: Sequence[Tuple[int, str, Any]]):
        for _position, op, _value in conjuncts:
            if op not in _OPERATORS:
                raise InvalidState(f"unsupported pushdown operator {op!r}")
        self.conjuncts = tuple(conjuncts)

    def matches(self, row: Tuple[Any, ...]) -> bool:
        for position, op, value in self.conjuncts:
            candidate = row[position]
            if candidate is None or value is None:
                return False
            if not _OPERATORS[op](candidate, value):
                return False
        return True

    def approx_size(self) -> int:
        return 16 * max(1, len(self.conjuncts))

    def __repr__(self) -> str:
        parts = " AND ".join(
            f"col{position} {op} {value!r}"
            for position, op, value in self.conjuncts
        )
        return f"ScanFilter({parts or 'TRUE'})"


class Projection:
    """Column positions to ship back (None = whole row)."""

    __slots__ = ("positions",)

    def __init__(self, positions: Optional[Sequence[int]] = None):
        self.positions = tuple(positions) if positions is not None else None

    def apply(self, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        if self.positions is None:
            return row
        return tuple(row[position] for position in self.positions)

    def approx_size(self) -> int:
        return 8 * (len(self.positions) if self.positions else 1)
