"""Workloads for the evaluation: TPC-C and its variants."""
