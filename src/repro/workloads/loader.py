"""Bulk loading of initial database populations.

Initial load bypasses the transaction path (population is setup, not
measurement): records are written with version number 0 -- visible to
every snapshot -- and indexes are built bottom-up in one pass.  The rid
counters are advanced past the loaded rows so processing nodes allocate
fresh rids afterwards.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Tuple

from repro import effects
from repro.core.record import VersionedRecord
from repro.core.spaces import DATA_SPACE, META_SPACE, data_key, rid_counter_key
from repro.sql.keyenc import encode_key
from repro.sql.schema import Catalog
from repro.sql.table import IndexManager

LOAD_VERSION = 0  # version number <= every snapshot base: visible to all


class BulkLoader:
    """Loads whole tables and builds their indexes."""

    def __init__(self, catalog: Catalog, index_manager: IndexManager,
                 batch_size: int = 512):
        self.catalog = catalog
        self.indexes = index_manager
        self.batch_size = batch_size

    def load_table(
        self, table_name: str, rows: Iterable[Dict[str, Any]]
    ) -> Generator:
        """Write all ``rows`` and (re)build every index of the table.

        Returns the number of rows loaded.  Rids are assigned sequentially
        from 1 in input order.
        """
        schema = self.catalog.table(table_name)
        payloads: List[Tuple[Any, ...]] = [
            schema.make_row(values) for values in rows
        ]
        puts: List[effects.Put] = []
        for offset, payload in enumerate(payloads):
            rid = offset + 1
            puts.append(
                effects.Put(
                    DATA_SPACE,
                    data_key(schema.table_id, rid),
                    VersionedRecord.initial(LOAD_VERSION, payload),
                )
            )
        for i in range(0, len(puts), self.batch_size):
            yield effects.Batch(puts[i : i + self.batch_size])
        # Advance the rid counter past the loaded rows.
        yield effects.Put(META_SPACE, rid_counter_key(schema.table_id), len(payloads))

        for index in schema.indexes:
            entries = sorted(
                (encode_key(schema.index_key_of(index, payload)), offset + 1)
                for offset, payload in enumerate(payloads)
            )
            tree = self.indexes.tree(index)
            yield from tree.bulk_build(entries)
        return len(payloads)
