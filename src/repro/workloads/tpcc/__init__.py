"""The TPC-C benchmark (Section 6.2).

Full schema, population, and all five transactions, with the paper's
modifications: terminals have no think/wait times, and two extra mixes
exist besides the standard one -- a read-intensive mix (Table 2) and a
"shardable" variant with all cross-warehouse accesses removed
(Section 6.4).
"""

from repro.workloads.tpcc.mixes import (
    READ_INTENSIVE_MIX,
    SHARDABLE_MIX,
    STANDARD_MIX,
    TpccMix,
)
from repro.workloads.tpcc.params import TpccScale
from repro.workloads.tpcc.schema import build_tpcc_catalog

__all__ = [
    "READ_INTENSIVE_MIX",
    "SHARDABLE_MIX",
    "STANDARD_MIX",
    "TpccMix",
    "TpccScale",
    "build_tpcc_catalog",
]
