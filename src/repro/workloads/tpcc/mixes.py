"""The workload mixes of Table 2 (plus the shardable variant of §6.4)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class TpccMix:
    """A transaction mix: weights per transaction type.

    ``throughput_metric`` is what the paper reports for the mix: "tpmc"
    (new-order transactions per minute) for the standard mix, "tps"
    (all transactions per second) for the read-intensive mix.
    """

    name: str
    weights: Tuple[Tuple[str, float], ...]
    remote_accesses: bool
    throughput_metric: str

    def pick(self, rng: random.Random) -> str:
        total = sum(weight for _name, weight in self.weights)
        roll = rng.uniform(0.0, total)
        for txn_name, weight in self.weights:
            roll -= weight
            if roll <= 0.0:
                return txn_name
        return self.weights[-1][0]

    @property
    def write_ratio(self) -> float:
        """Approximate fraction of *operations* that are writes, as in
        Table 2 (35.84% standard, 4.89% read-intensive).

        Derived from the average read/write op counts per transaction
        type (spec profile with ~10 order lines per order).
        """
        reads_writes = {
            # (avg rows read, avg rows written) per transaction, spec
            # profile with ~10 order lines per order.  Stock-level reads
            # the lines of the last 20 orders plus their stock rows.
            "new_order": (36.0, 23.0),
            "payment": (6.0, 4.0),
            "order_status": (25.0, 0.0),
            "delivery": (130.0, 130.0),
            "stock_level": (400.0, 0.0),
        }
        reads = writes = 0.0
        total_weight = sum(weight for _n, weight in self.weights)
        for txn_name, weight in self.weights:
            r, w = reads_writes[txn_name]
            reads += weight / total_weight * r
            writes += weight / total_weight * w
        return writes / (reads + writes)


#: The standard TPC-C mix (write-intensive; 45% new-order -> TpmC metric).
STANDARD_MIX = TpccMix(
    name="standard",
    weights=(
        ("new_order", 45.0),
        ("payment", 43.0),
        ("delivery", 4.0),
        ("order_status", 4.0),
        ("stock_level", 4.0),
    ),
    remote_accesses=True,
    throughput_metric="tpmc",
)

#: The paper's read-intensive mix (Table 2): 95.11% read ratio.
READ_INTENSIVE_MIX = TpccMix(
    name="read-intensive",
    weights=(
        ("new_order", 9.0),
        ("order_status", 84.0),
        ("stock_level", 7.0),
    ),
    remote_accesses=True,
    throughput_metric="tps",
)

#: TPC-C shardable (Section 6.4): remote new-order and payment accesses
#: replaced by single-warehouse equivalents; ideal for partitioned systems.
SHARDABLE_MIX = TpccMix(
    name="shardable",
    weights=STANDARD_MIX.weights,
    remote_accesses=False,
    throughput_metric="tpmc",
)

MIXES: Dict[str, TpccMix] = {
    mix.name: mix for mix in (STANDARD_MIX, READ_INTENSIVE_MIX, SHARDABLE_MIX)
}
