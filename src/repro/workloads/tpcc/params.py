"""Parameter generation for TPC-C transactions.

Implements the spec's random distributions (uniform, NURand, last-name
syllables) scaled by :class:`TpccScale`, so small in-simulator databases
keep the spec's access skew.  The remote-access probabilities (1 % remote
new-order item, 15 % remote payment customer) are what make the standard
mix hostile to partitioned databases -- the ``shardable`` variant of
Section 6.4 sets them to zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION",
    "EYING",
)


def last_name(number: int) -> str:
    """Customer last name from the spec's syllable table."""
    return (
        _SYLLABLES[number // 100]
        + _SYLLABLES[number // 10 % 10]
        + _SYLLABLES[number % 10]
    )


@dataclass(frozen=True)
class TpccScale:
    """Database sizing.  ``spec()`` gives the standard numbers; the
    scaled-down presets keep the *ratios* (hence the contention profile)
    while fitting in simulator memory/time budgets."""

    warehouses: int = 200
    districts_per_warehouse: int = 10
    customers_per_district: int = 3000
    initial_orders_per_district: int = 3000
    items: int = 100_000

    @classmethod
    def spec(cls, warehouses: int = 200) -> "TpccScale":
        return cls(warehouses=warehouses)

    @classmethod
    def small(cls, warehouses: int = 8) -> "TpccScale":
        """Bench-friendly sizing: ~5k rows per warehouse."""
        return cls(
            warehouses=warehouses,
            districts_per_warehouse=10,
            customers_per_district=120,
            initial_orders_per_district=120,
            items=1000,
        )

    @classmethod
    def tiny(cls, warehouses: int = 2) -> "TpccScale":
        """For unit tests."""
        return cls(
            warehouses=warehouses,
            districts_per_warehouse=4,
            customers_per_district=12,
            initial_orders_per_district=12,
            items=50,
        )

    @property
    def c_id_a(self) -> int:
        """NURand A constant for customer ids, scaled."""
        return _nurand_a(self.customers_per_district)

    @property
    def item_a(self) -> int:
        return _nurand_a(self.items)

    @property
    def name_range(self) -> int:
        """Distinct last names in play: 1000 in spec, fewer when scaled."""
        return min(1000, max(10, self.customers_per_district // 3))


def _nurand_a(population: int) -> int:
    """Largest 2^k - 1 not exceeding ~population/8 (spec uses 1023 for
    3000 customers and 8191 for 100k items, preserving skew)."""
    a = 1
    while (a * 2 + 1) * 8 <= population * 8 // 3 + 7:
        a = a * 2 + 1
    return max(a, 15)


class TpccRandom:
    """Seeded random source with the spec's distributions."""

    def __init__(self, scale: TpccScale, seed: int = 1):
        self.scale = scale
        self.rng = random.Random(seed)
        # The per-run constants C of the NURand function.
        self._c_c_id = self.rng.randint(0, scale.c_id_a)
        self._c_i_id = self.rng.randint(0, scale.item_a)
        self._c_name = self.rng.randint(0, 255)

    def uniform(self, low: int, high: int) -> int:
        return self.rng.randint(low, high)

    def nurand(self, a: int, c: int, low: int, high: int) -> int:
        return (
            (self.rng.randint(0, a) | self.rng.randint(low, high)) + c
        ) % (high - low + 1) + low

    def customer_id(self) -> int:
        return self.nurand(
            self.scale.c_id_a, self._c_c_id, 1, self.scale.customers_per_district
        )

    def item_id(self) -> int:
        return self.nurand(self.scale.item_a, self._c_i_id, 1, self.scale.items)

    def random_last_name(self) -> str:
        upper = self.scale.name_range - 1
        return last_name(self.nurand(255, self._c_name, 0, upper) % 1000)

    def other_warehouse(self, w_id: int) -> int:
        if self.scale.warehouses == 1:
            return w_id
        other = self.uniform(1, self.scale.warehouses - 1)
        return other if other < w_id else other + 1

    def amount(self, low: float, high: float) -> float:
        return round(self.rng.uniform(low, high), 2)


# ---------------------------------------------------------------------------
# Transaction parameter records
# ---------------------------------------------------------------------------


@dataclass
class NewOrderParams:
    w_id: int
    d_id: int
    c_id: int
    items: List[Tuple[int, int, int]]  # (i_id, supply_w_id, quantity)
    rollback: bool  # the spec's 1% intentionally-failing order
    all_local: bool


@dataclass
class PaymentParams:
    w_id: int
    d_id: int
    c_w_id: int
    c_d_id: int
    c_id: Optional[int]       # None -> lookup by last name
    c_last: Optional[str]
    amount: float


@dataclass
class OrderStatusParams:
    w_id: int
    d_id: int
    c_id: Optional[int]
    c_last: Optional[str]


@dataclass
class DeliveryParams:
    w_id: int
    carrier_id: int


@dataclass
class StockLevelParams:
    w_id: int
    d_id: int
    threshold: int


class ParamGenerator:
    """Generates transaction inputs for one terminal (home warehouse)."""

    def __init__(
        self,
        scale: TpccScale,
        seed: int = 1,
        remote_accesses: bool = True,
        home_warehouse: Optional[int] = None,
    ):
        self.scale = scale
        self.random = TpccRandom(scale, seed)
        self.remote_accesses = remote_accesses
        self.home_warehouse = home_warehouse

    def _warehouse(self) -> int:
        if self.home_warehouse is not None:
            return self.home_warehouse
        return self.random.uniform(1, self.scale.warehouses)

    def new_order(self) -> NewOrderParams:
        rnd = self.random
        w_id = self._warehouse()
        d_id = rnd.uniform(1, self.scale.districts_per_warehouse)
        c_id = rnd.customer_id()
        ol_cnt = rnd.uniform(5, 15)
        items: List[Tuple[int, int, int]] = []
        all_local = True
        seen = set()
        while len(items) < ol_cnt:
            i_id = rnd.item_id()
            if i_id in seen:
                continue
            seen.add(i_id)
            supply_w = w_id
            if (
                self.remote_accesses
                and self.scale.warehouses > 1
                and rnd.uniform(1, 100) == 1
            ):
                supply_w = rnd.other_warehouse(w_id)
                all_local = False
            items.append((i_id, supply_w, rnd.uniform(1, 10)))
        rollback = rnd.uniform(1, 100) == 1
        return NewOrderParams(w_id, d_id, c_id, items, rollback, all_local)

    def payment(self) -> PaymentParams:
        rnd = self.random
        w_id = self._warehouse()
        d_id = rnd.uniform(1, self.scale.districts_per_warehouse)
        if (
            self.remote_accesses
            and self.scale.warehouses > 1
            and rnd.uniform(1, 100) <= 15
        ):
            c_w_id = rnd.other_warehouse(w_id)
            c_d_id = rnd.uniform(1, self.scale.districts_per_warehouse)
        else:
            c_w_id, c_d_id = w_id, d_id
        if rnd.uniform(1, 100) <= 60:
            c_id, c_last = None, rnd.random_last_name()
        else:
            c_id, c_last = rnd.customer_id(), None
        return PaymentParams(
            w_id, d_id, c_w_id, c_d_id, c_id, c_last, rnd.amount(1.0, 5000.0)
        )

    def order_status(self) -> OrderStatusParams:
        rnd = self.random
        w_id = self._warehouse()
        d_id = rnd.uniform(1, self.scale.districts_per_warehouse)
        if rnd.uniform(1, 100) <= 60:
            return OrderStatusParams(w_id, d_id, None, rnd.random_last_name())
        return OrderStatusParams(w_id, d_id, rnd.customer_id(), None)

    def delivery(self) -> DeliveryParams:
        return DeliveryParams(self._warehouse(), self.random.uniform(1, 10))

    def stock_level(self) -> StockLevelParams:
        rnd = self.random
        return StockLevelParams(
            self._warehouse(),
            rnd.uniform(1, self.scale.districts_per_warehouse),
            rnd.uniform(10, 20),
        )
