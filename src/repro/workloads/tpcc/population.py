"""Initial TPC-C database population.

Follows the spec's cardinalities and value rules, scaled by
:class:`~repro.workloads.tpcc.params.TpccScale`.  String fillers are kept
short (the spec pads rows to hundreds of bytes to stress disk layouts; in
an in-memory reproduction only relative sizes matter and short fillers
keep the Python heap reasonable).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Generator, Iterator, List

from repro.sql.schema import Catalog
from repro.workloads.loader import BulkLoader
from repro.workloads.tpcc.params import TpccScale, last_name

#: Fraction of initial orders already delivered (spec: 2100 of 3000).
DELIVERED_FRACTION = 0.7


_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _text(rng: random.Random, length: int = 12) -> str:
    return "".join(rng.choices(_ALPHABET, k=length))


def _zip(rng: random.Random) -> str:
    return f"{rng.randint(0, 9999):04d}11111"


def item_rows(scale: TpccScale, rng: random.Random) -> Iterator[Dict[str, Any]]:
    for i_id in range(1, scale.items + 1):
        original = rng.randint(1, 10) == 1
        yield {
            "i_id": i_id,
            "i_im_id": rng.randint(1, 10_000),
            "i_name": _text(rng, 14),
            "i_price": round(rng.uniform(1.0, 100.0), 2),
            "i_data": ("ORIGINAL" if original else _text(rng, 16)),
        }


def warehouse_row(w_id: int, rng: random.Random) -> Dict[str, Any]:
    return {
        "w_id": w_id,
        "w_name": _text(rng, 8),
        "w_street_1": _text(rng),
        "w_street_2": _text(rng),
        "w_city": _text(rng),
        "w_state": _text(rng, 2).upper(),
        "w_zip": _zip(rng),
        "w_tax": round(rng.uniform(0.0, 0.2), 4),
        "w_ytd": 300_000.0,
    }


def district_rows(
    w_id: int, scale: TpccScale, rng: random.Random
) -> Iterator[Dict[str, Any]]:
    for d_id in range(1, scale.districts_per_warehouse + 1):
        yield {
            "d_w_id": w_id,
            "d_id": d_id,
            "d_name": _text(rng, 8),
            "d_street_1": _text(rng),
            "d_street_2": _text(rng),
            "d_city": _text(rng),
            "d_state": _text(rng, 2).upper(),
            "d_zip": _zip(rng),
            "d_tax": round(rng.uniform(0.0, 0.2), 4),
            "d_ytd": 30_000.0,
            "d_next_o_id": scale.initial_orders_per_district + 1,
        }


def customer_rows(
    w_id: int, scale: TpccScale, rng: random.Random
) -> Iterator[Dict[str, Any]]:
    name_range = scale.name_range
    for d_id in range(1, scale.districts_per_warehouse + 1):
        for c_id in range(1, scale.customers_per_district + 1):
            # Spec: the first 1000 customers get sequential last names,
            # the rest NURand-distributed; scaled via name_range.
            if c_id <= name_range:
                c_last = last_name((c_id - 1) % 1000)
            else:
                c_last = last_name(rng.randint(0, name_range - 1) % 1000)
            yield {
                "c_w_id": w_id,
                "c_d_id": d_id,
                "c_id": c_id,
                "c_first": _text(rng, 10),
                "c_middle": "OE",
                "c_last": c_last,
                "c_street_1": _text(rng),
                "c_city": _text(rng),
                "c_state": _text(rng, 2).upper(),
                "c_zip": _zip(rng),
                "c_phone": f"{rng.randint(0, 10**10 - 1):010d}",
                "c_since": 0.0,
                "c_credit": "BC" if rng.randint(1, 10) == 1 else "GC",
                "c_credit_lim": 50_000.0,
                "c_discount": round(rng.uniform(0.0, 0.5), 4),
                "c_balance": -10.0,
                "c_ytd_payment": 10.0,
                "c_payment_cnt": 1,
                "c_delivery_cnt": 0,
                "c_data": _text(rng, 24),
            }


def stock_rows(
    w_id: int, scale: TpccScale, rng: random.Random
) -> Iterator[Dict[str, Any]]:
    for i_id in range(1, scale.items + 1):
        yield {
            "s_w_id": w_id,
            "s_i_id": i_id,
            "s_quantity": rng.randint(10, 100),
            "s_ytd": 0.0,
            "s_order_cnt": 0,
            "s_remote_cnt": 0,
            "s_data": _text(rng, 16),
            "s_dist_01": _text(rng, 24),
        }


class _OrderData:
    """Orders, order lines, and new-order rows for one warehouse."""

    def __init__(self) -> None:
        self.orders: List[Dict[str, Any]] = []
        self.orderlines: List[Dict[str, Any]] = []
        self.neworders: List[Dict[str, Any]] = []


def order_data(w_id: int, scale: TpccScale, rng: random.Random) -> _OrderData:
    data = _OrderData()
    delivered_upto = int(scale.initial_orders_per_district * DELIVERED_FRACTION)
    for d_id in range(1, scale.districts_per_warehouse + 1):
        # Spec: o_c_id is a permutation of the customer ids.
        customers = list(range(1, scale.customers_per_district + 1))
        rng.shuffle(customers)
        for o_id in range(1, scale.initial_orders_per_district + 1):
            delivered = o_id <= delivered_upto
            ol_cnt = rng.randint(5, 15)
            data.orders.append({
                "o_w_id": w_id,
                "o_d_id": d_id,
                "o_id": o_id,
                "o_c_id": customers[(o_id - 1) % len(customers)],
                "o_entry_d": 0.0,
                "o_carrier_id": rng.randint(1, 10) if delivered else None,
                "o_ol_cnt": ol_cnt,
                "o_all_local": 1,
            })
            if not delivered:
                data.neworders.append({
                    "no_w_id": w_id, "no_d_id": d_id, "no_o_id": o_id,
                })
            for number in range(1, ol_cnt + 1):
                data.orderlines.append({
                    "ol_w_id": w_id,
                    "ol_d_id": d_id,
                    "ol_o_id": o_id,
                    "ol_number": number,
                    "ol_i_id": rng.randint(1, scale.items),
                    "ol_supply_w_id": w_id,
                    "ol_delivery_d": 0.0 if delivered else None,
                    "ol_quantity": 5,
                    "ol_amount": (
                        0.0 if delivered else round(rng.uniform(0.01, 9999.99), 2)
                    ),
                    "ol_dist_info": _text(rng, 24),
                })
    return data


def populate(
    catalog: Catalog,
    loader: BulkLoader,
    scale: TpccScale,
    seed: int = 7,
) -> Generator:
    """Load the whole database; returns {table: row count}."""
    rng = random.Random(seed)
    counts: Dict[str, int] = {}
    counts["item"] = yield from loader.load_table("item", item_rows(scale, rng))

    warehouses: List[Dict[str, Any]] = []
    districts: List[Dict[str, Any]] = []
    customers: List[Dict[str, Any]] = []
    stocks: List[Dict[str, Any]] = []
    orders: List[Dict[str, Any]] = []
    orderlines: List[Dict[str, Any]] = []
    neworders: List[Dict[str, Any]] = []
    for w_id in range(1, scale.warehouses + 1):
        warehouses.append(warehouse_row(w_id, rng))
        districts.extend(district_rows(w_id, scale, rng))
        customers.extend(customer_rows(w_id, scale, rng))
        stocks.extend(stock_rows(w_id, scale, rng))
        data = order_data(w_id, scale, rng)
        orders.extend(data.orders)
        orderlines.extend(data.orderlines)
        neworders.extend(data.neworders)

    counts["warehouse"] = yield from loader.load_table("warehouse", warehouses)
    counts["district"] = yield from loader.load_table("district", districts)
    counts["customer"] = yield from loader.load_table("customer", customers)
    counts["stock"] = yield from loader.load_table("stock", stocks)
    counts["orders"] = yield from loader.load_table("orders", orders)
    counts["orderline"] = yield from loader.load_table("orderline", orderlines)
    counts["neworder"] = yield from loader.load_table("neworder", neworders)
    counts["history"] = yield from loader.load_table("history", [])
    return counts
