"""The nine TPC-C tables and their indexes."""

from __future__ import annotations

from repro.sql.schema import Catalog, Column
from repro.sql.types import ColumnType as T


def _col(name: str, column_type: T, nullable: bool = True) -> Column:
    return Column(name, column_type, nullable=nullable)


def build_tpcc_catalog(catalog: Catalog = None) -> Catalog:
    """Define the TPC-C schema in ``catalog`` (a fresh one by default)."""
    if catalog is None:
        catalog = Catalog()

    catalog.define_table(
        "warehouse",
        [
            _col("w_id", T.INT, False),
            _col("w_name", T.TEXT),
            _col("w_street_1", T.TEXT),
            _col("w_street_2", T.TEXT),
            _col("w_city", T.TEXT),
            _col("w_state", T.TEXT),
            _col("w_zip", T.TEXT),
            _col("w_tax", T.DECIMAL),
            _col("w_ytd", T.DECIMAL),
        ],
        ["w_id"],
    )

    catalog.define_table(
        "district",
        [
            _col("d_w_id", T.INT, False),
            _col("d_id", T.INT, False),
            _col("d_name", T.TEXT),
            _col("d_street_1", T.TEXT),
            _col("d_street_2", T.TEXT),
            _col("d_city", T.TEXT),
            _col("d_state", T.TEXT),
            _col("d_zip", T.TEXT),
            _col("d_tax", T.DECIMAL),
            _col("d_ytd", T.DECIMAL),
            _col("d_next_o_id", T.INT),
        ],
        ["d_w_id", "d_id"],
    )

    catalog.define_table(
        "customer",
        [
            _col("c_w_id", T.INT, False),
            _col("c_d_id", T.INT, False),
            _col("c_id", T.INT, False),
            _col("c_first", T.TEXT),
            _col("c_middle", T.TEXT),
            _col("c_last", T.TEXT),
            _col("c_street_1", T.TEXT),
            _col("c_city", T.TEXT),
            _col("c_state", T.TEXT),
            _col("c_zip", T.TEXT),
            _col("c_phone", T.TEXT),
            _col("c_since", T.TIMESTAMP),
            _col("c_credit", T.TEXT),
            _col("c_credit_lim", T.DECIMAL),
            _col("c_discount", T.DECIMAL),
            _col("c_balance", T.DECIMAL),
            _col("c_ytd_payment", T.DECIMAL),
            _col("c_payment_cnt", T.INT),
            _col("c_delivery_cnt", T.INT),
            _col("c_data", T.TEXT),
        ],
        ["c_w_id", "c_d_id", "c_id"],
    )
    catalog.define_index(
        "customer_name", "customer", ["c_w_id", "c_d_id", "c_last"]
    )

    catalog.define_table(
        "history",
        [
            _col("h_id", T.BIGINT, False),
            _col("h_c_id", T.INT),
            _col("h_c_d_id", T.INT),
            _col("h_c_w_id", T.INT),
            _col("h_d_id", T.INT),
            _col("h_w_id", T.INT),
            _col("h_date", T.TIMESTAMP),
            _col("h_amount", T.DECIMAL),
            _col("h_data", T.TEXT),
        ],
        ["h_id"],
    )

    catalog.define_table(
        "neworder",
        [
            _col("no_w_id", T.INT, False),
            _col("no_d_id", T.INT, False),
            _col("no_o_id", T.INT, False),
        ],
        ["no_w_id", "no_d_id", "no_o_id"],
    )

    catalog.define_table(
        "orders",
        [
            _col("o_w_id", T.INT, False),
            _col("o_d_id", T.INT, False),
            _col("o_id", T.INT, False),
            _col("o_c_id", T.INT),
            _col("o_entry_d", T.TIMESTAMP),
            _col("o_carrier_id", T.INT),
            _col("o_ol_cnt", T.INT),
            _col("o_all_local", T.INT),
        ],
        ["o_w_id", "o_d_id", "o_id"],
    )
    catalog.define_index(
        "orders_customer", "orders", ["o_w_id", "o_d_id", "o_c_id"]
    )

    catalog.define_table(
        "orderline",
        [
            _col("ol_w_id", T.INT, False),
            _col("ol_d_id", T.INT, False),
            _col("ol_o_id", T.INT, False),
            _col("ol_number", T.INT, False),
            _col("ol_i_id", T.INT),
            _col("ol_supply_w_id", T.INT),
            _col("ol_delivery_d", T.TIMESTAMP),
            _col("ol_quantity", T.INT),
            _col("ol_amount", T.DECIMAL),
            _col("ol_dist_info", T.TEXT),
        ],
        ["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
    )

    catalog.define_table(
        "item",
        [
            _col("i_id", T.INT, False),
            _col("i_im_id", T.INT),
            _col("i_name", T.TEXT),
            _col("i_price", T.DECIMAL),
            _col("i_data", T.TEXT),
        ],
        ["i_id"],
    )

    catalog.define_table(
        "stock",
        [
            _col("s_w_id", T.INT, False),
            _col("s_i_id", T.INT, False),
            _col("s_quantity", T.INT),
            _col("s_ytd", T.DECIMAL),
            _col("s_order_cnt", T.INT),
            _col("s_remote_cnt", T.INT),
            _col("s_data", T.TEXT),
            _col("s_dist_01", T.TEXT),
        ],
        ["s_w_id", "s_i_id"],
    )

    return catalog


TPCC_TABLE_NAMES = [
    "warehouse", "district", "customer", "history", "neworder",
    "orders", "orderline", "item", "stock",
]
