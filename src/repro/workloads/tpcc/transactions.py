"""The five TPC-C transactions, written against the record-level API.

Like the paper's implementation (and like VoltDB's stored procedures),
the transactions are pre-compiled query plans rather than SQL text: they
use the table/index handles directly and batch storage accesses
aggressively (``get_many``), which is exactly the behaviour Section 5.1
credits for Tell's low request counts.

Each transaction is a generator coroutine taking a :class:`TpccContext`
and a parameter record from :mod:`repro.workloads.tpcc.params`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro import effects
from repro.core.transaction import Transaction
from repro.errors import KeyNotFound, TellError
from repro.sql.schema import Catalog
from repro.sql.table import IndexManager, Table
from repro.workloads.tpcc.params import (
    DeliveryParams,
    NewOrderParams,
    OrderStatusParams,
    PaymentParams,
    StockLevelParams,
)


class TpccRollback(TellError):
    """The spec's intentional 1% new-order rollback (invalid item)."""


class TpccContext:
    """Table handles plus the CPU-cost knob for one transaction."""

    def __init__(
        self,
        catalog: Catalog,
        txn: Transaction,
        indexes: IndexManager,
        cpu_per_row_us: float = 0.0,
    ):
        self.catalog = catalog
        self.txn = txn
        self.indexes = indexes
        self.cpu_per_row_us = cpu_per_row_us
        self._tables: Dict[str, Table] = {}

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            table = Table(self.catalog.table(name), self.txn, self.indexes)
            self._tables[name] = table
        return table

    def work(self, rows: int = 1) -> Generator:
        """Charge per-row query-processing CPU (a no-op when zero)."""
        if self.cpu_per_row_us > 0.0:
            yield effects.Compute(self.cpu_per_row_us * rows)


def _middle_customer_by_name(
    ctx: TpccContext, w_id: int, d_id: int, c_last: str
) -> Generator:
    """Spec clause 2.6.2: position ceil(n/2) in c_first order."""
    customer_table = ctx.table("customer")
    index = next(
        i for i in customer_table.schema.indexes if i.name == "customer_name"
    )
    matches = yield from customer_table.lookup(index, (w_id, d_id, c_last))
    if not matches:
        raise KeyNotFound(f"no customer named {c_last} in ({w_id},{d_id})")
    first_position = customer_table.schema.position("c_first")
    matches.sort(key=lambda pair: pair[1][first_position])
    return matches[(len(matches) - 1) // 2]


# ---------------------------------------------------------------------------
# 1. New-Order (the TpmC transaction)
# ---------------------------------------------------------------------------


def new_order(ctx: TpccContext, params: NewOrderParams) -> Generator:
    warehouse_table = ctx.table("warehouse")
    district_table = ctx.table("district")
    customer_table = ctx.table("customer")
    item_table = ctx.table("item")
    stock_table = ctx.table("stock")

    _w_rid, warehouse = yield from warehouse_table.get_for_update((params.w_id,))
    w_tax = warehouse[warehouse_table.schema.position("w_tax")]

    d_rid, district = yield from district_table.get_for_update(
        (params.w_id, params.d_id)
    )
    next_position = district_table.schema.position("d_next_o_id")
    o_id = district[next_position]
    d_tax = district[district_table.schema.position("d_tax")]
    yield from district_table.update_by_rid(d_rid, {"d_next_o_id": o_id + 1})

    customer = yield from customer_table.get(
        (params.w_id, params.d_id, params.c_id)
    )
    if customer is None:
        raise KeyNotFound("customer not found")
    c_discount = customer[1][customer_table.schema.position("c_discount")]

    # Batched reads: all items in one shot, all stocks in one shot.
    item_ids = [(i_id,) for i_id, _sw, _q in params.items]
    items = yield from item_table.get_many(item_ids)
    stock_keys = [(supply_w, i_id) for i_id, supply_w, _q in params.items]
    stocks = yield from stock_table.get_many(stock_keys)
    yield from ctx.work(len(params.items) * 2)

    if params.rollback:
        # Spec: the last item id of 1% of orders is invalid; the
        # transaction must roll back after doing its reads.
        raise TpccRollback("invalid item id (1% rollback)")

    schema = stock_table.schema
    quantity_pos = schema.position("s_quantity")
    ytd_pos = schema.position("s_ytd")
    cnt_pos = schema.position("s_order_cnt")
    remote_pos = schema.position("s_remote_cnt")
    price_pos = item_table.schema.position("i_price")

    orders_table = ctx.table("orders")
    neworder_table = ctx.table("neworder")
    orderline_table = ctx.table("orderline")
    yield from orders_table.insert({
        "o_w_id": params.w_id,
        "o_d_id": params.d_id,
        "o_id": o_id,
        "o_c_id": params.c_id,
        "o_entry_d": ctx.txn.start_time,
        "o_carrier_id": None,
        "o_ol_cnt": len(params.items),
        "o_all_local": 1 if params.all_local else 0,
    })
    yield from neworder_table.insert({
        "no_w_id": params.w_id, "no_d_id": params.d_id, "no_o_id": o_id,
    })

    total = 0.0
    for number, (i_id, supply_w, quantity) in enumerate(params.items, start=1):
        item = items[(i_id,)]
        if item is None:
            raise TpccRollback(f"item {i_id} does not exist")
        stock = stocks[(supply_w, i_id)]
        if stock is None:
            raise KeyNotFound(f"stock ({supply_w},{i_id}) missing")
        stock_rid, stock_row = stock
        s_quantity = stock_row[quantity_pos]
        if s_quantity - quantity >= 10:
            s_quantity -= quantity
        else:
            s_quantity = s_quantity - quantity + 91
        yield from stock_table.update_by_rid(stock_rid, {
            "s_quantity": s_quantity,
            "s_ytd": stock_row[ytd_pos] + quantity,
            "s_order_cnt": stock_row[cnt_pos] + 1,
            "s_remote_cnt": stock_row[remote_pos]
            + (0 if supply_w == params.w_id else 1),
        })
        amount = quantity * item[1][price_pos]
        total += amount
        yield from orderline_table.insert({
            "ol_w_id": params.w_id,
            "ol_d_id": params.d_id,
            "ol_o_id": o_id,
            "ol_number": number,
            "ol_i_id": i_id,
            "ol_supply_w_id": supply_w,
            "ol_delivery_d": None,
            "ol_quantity": quantity,
            "ol_amount": amount,
            "ol_dist_info": "",
        })
    total *= (1.0 - c_discount) * (1.0 + w_tax + d_tax)
    yield from ctx.work(len(params.items))
    return {"o_id": o_id, "total": round(total, 2)}


# ---------------------------------------------------------------------------
# 2. Payment
# ---------------------------------------------------------------------------


def payment(ctx: TpccContext, params: PaymentParams) -> Generator:
    warehouse_table = ctx.table("warehouse")
    district_table = ctx.table("district")
    customer_table = ctx.table("customer")
    history_table = ctx.table("history")

    w_rid, warehouse = yield from warehouse_table.get_for_update((params.w_id,))
    w_ytd_pos = warehouse_table.schema.position("w_ytd")
    yield from warehouse_table.update_by_rid(
        w_rid, {"w_ytd": warehouse[w_ytd_pos] + params.amount}
    )

    d_rid, district = yield from district_table.get_for_update(
        (params.w_id, params.d_id)
    )
    d_ytd_pos = district_table.schema.position("d_ytd")
    yield from district_table.update_by_rid(
        d_rid, {"d_ytd": district[d_ytd_pos] + params.amount}
    )

    if params.c_id is not None:
        found = yield from customer_table.get(
            (params.c_w_id, params.c_d_id, params.c_id)
        )
        if found is None:
            raise KeyNotFound("customer not found")
        c_rid, customer = found
    else:
        c_rid, customer = yield from _middle_customer_by_name(
            ctx, params.c_w_id, params.c_d_id, params.c_last
        )
    schema = customer_table.schema
    changes = {
        "c_balance": customer[schema.position("c_balance")] - params.amount,
        "c_ytd_payment": customer[schema.position("c_ytd_payment")] + params.amount,
        "c_payment_cnt": customer[schema.position("c_payment_cnt")] + 1,
    }
    if customer[schema.position("c_credit")] == "BC":
        # Bad-credit customers accumulate payment history in c_data.
        marker = f"{customer[schema.position('c_id')]}:{params.amount:.2f};"
        changes["c_data"] = (marker + customer[schema.position("c_data")])[:500]
    yield from customer_table.update_by_rid(c_rid, changes)

    h_id = yield from ctx.txn.pn.allocate_rid(history_table.schema.table_id + 1000)
    yield from history_table.insert({
        "h_id": h_id,
        "h_c_id": customer[schema.position("c_id")],
        "h_c_d_id": params.c_d_id,
        "h_c_w_id": params.c_w_id,
        "h_d_id": params.d_id,
        "h_w_id": params.w_id,
        "h_date": ctx.txn.start_time,
        "h_amount": params.amount,
        "h_data": "",
    })
    yield from ctx.work(4)
    return {"amount": params.amount}


# ---------------------------------------------------------------------------
# 3. Order-Status (read only)
# ---------------------------------------------------------------------------


def order_status(ctx: TpccContext, params: OrderStatusParams) -> Generator:
    customer_table = ctx.table("customer")
    orders_table = ctx.table("orders")
    orderline_table = ctx.table("orderline")

    if params.c_id is not None:
        found = yield from customer_table.get(
            (params.w_id, params.d_id, params.c_id)
        )
        if found is None:
            raise KeyNotFound("customer not found")
        _c_rid, customer = found
    else:
        _c_rid, customer = yield from _middle_customer_by_name(
            ctx, params.w_id, params.d_id, params.c_last
        )
    c_id = customer[customer_table.schema.position("c_id")]

    index = next(
        i for i in orders_table.schema.indexes if i.name == "orders_customer"
    )
    orders = yield from orders_table.lookup(index, (params.w_id, params.d_id, c_id))
    if not orders:
        return {"c_id": c_id, "order": None, "lines": []}
    o_id_pos = orders_table.schema.position("o_id")
    _rid, last_order = max(orders, key=lambda pair: pair[1][o_id_pos])
    o_id = last_order[o_id_pos]

    lines = yield from orderline_table.index_range(
        orderline_table.schema.primary_index,
        (params.w_id, params.d_id, o_id),
        (params.w_id, params.d_id, o_id + 1),
    )
    yield from ctx.work(1 + len(lines))
    return {
        "c_id": c_id,
        "order": orders_table.schema.row_to_dict(last_order),
        "lines": [row for _rid, row in lines],
    }


# ---------------------------------------------------------------------------
# 4. Delivery
# ---------------------------------------------------------------------------


def delivery(ctx: TpccContext, params: DeliveryParams) -> Generator:
    neworder_table = ctx.table("neworder")
    orders_table = ctx.table("orders")
    orderline_table = ctx.table("orderline")
    customer_table = ctx.table("customer")
    districts = ctx.catalog.table("district")
    delivered = 0

    for d_id in range(1, _districts_per_warehouse(ctx) + 1):
        oldest = yield from neworder_table.index_range(
            neworder_table.schema.primary_index,
            (params.w_id, d_id),
            (params.w_id, d_id + 1),
            limit=1,
        )
        if not oldest:
            continue  # spec: skip districts with no undelivered orders
        no_rid, neworder_row = oldest[0]
        o_id = neworder_row[neworder_table.schema.position("no_o_id")]
        yield from neworder_table.delete_by_rid(no_rid)

        found = yield from orders_table.get((params.w_id, d_id, o_id))
        if found is None:
            continue
        o_rid, order = found
        c_id = order[orders_table.schema.position("o_c_id")]
        yield from orders_table.update_by_rid(
            o_rid, {"o_carrier_id": params.carrier_id}
        )

        lines = yield from orderline_table.index_range(
            orderline_table.schema.primary_index,
            (params.w_id, d_id, o_id),
            (params.w_id, d_id, o_id + 1),
        )
        amount_pos = orderline_table.schema.position("ol_amount")
        total = 0.0
        for line_rid, line in lines:
            total += line[amount_pos]
            yield from orderline_table.update_by_rid(
                line_rid, {"ol_delivery_d": ctx.txn.start_time}
            )

        c_found = yield from customer_table.get((params.w_id, d_id, c_id))
        if c_found is None:
            continue
        c_rid, customer = c_found
        schema = customer_table.schema
        yield from customer_table.update_by_rid(c_rid, {
            "c_balance": customer[schema.position("c_balance")] + total,
            "c_delivery_cnt": customer[schema.position("c_delivery_cnt")] + 1,
        })
        delivered += 1
        yield from ctx.work(3 + len(lines))
    return {"delivered": delivered}


def _districts_per_warehouse(ctx: TpccContext) -> int:
    # Inferred from the loaded data shape kept on the context if set by
    # the driver; defaults to the spec's 10.
    return getattr(ctx, "districts_per_warehouse", 10)


# ---------------------------------------------------------------------------
# 5. Stock-Level (read only)
# ---------------------------------------------------------------------------


def stock_level(ctx: TpccContext, params: StockLevelParams) -> Generator:
    district_table = ctx.table("district")
    orderline_table = ctx.table("orderline")
    stock_table = ctx.table("stock")

    found = yield from district_table.get((params.w_id, params.d_id))
    if found is None:
        raise KeyNotFound("district not found")
    _d_rid, district = found
    next_o_id = district[district_table.schema.position("d_next_o_id")]

    lines = yield from orderline_table.index_range(
        orderline_table.schema.primary_index,
        (params.w_id, params.d_id, max(1, next_o_id - 20)),
        (params.w_id, params.d_id, next_o_id),
    )
    i_id_pos = orderline_table.schema.position("ol_i_id")
    item_ids = sorted({line[i_id_pos] for _rid, line in lines})
    stocks = yield from stock_table.get_many(
        [(params.w_id, i_id) for i_id in item_ids]
    )
    quantity_pos = stock_table.schema.position("s_quantity")
    low = 0
    for i_id in item_ids:
        stock = stocks[(params.w_id, i_id)]
        if stock is not None and stock[1][quantity_pos] < params.threshold:
            low += 1
    yield from ctx.work(len(lines) + len(item_ids))
    return {"low_stock": low, "distinct_items": len(item_ids)}


#: Dispatch table the drivers use.
TRANSACTIONS = {
    "new_order": new_order,
    "payment": payment,
    "order_status": order_status,
    "delivery": delivery,
    "stock_level": stock_level,
}
