"""A YCSB-style key-value workload.

The shared-data architecture's pitch is scaling *without workload
assumptions* (Section 2.1).  TPC-C is partition-friendly by design; this
workload is the opposite extreme: a single flat table of records accessed
by zipfian-distributed keys with configurable read/update/insert/scan
mixes -- the standard YCSB core workloads:

* A: 50% read / 50% update       (update heavy)
* B: 95% read / 5% update        (read mostly)
* C: 100% read
* D: 95% read / 5% insert        (read latest)
* E: 95% short range scans / 5% insert
* F: 50% read / 50% read-modify-write

Keys have no locality structure at all, so a partitioned database would
see pure-random cross-partition traffic -- for Tell it makes no
difference, which is precisely the point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.transaction import Transaction
from repro.sql.schema import Catalog, Column
from repro.sql.table import IndexManager, Table
from repro.sql.types import ColumnType
from repro.workloads.loader import BulkLoader

FIELD_COUNT = 4
FIELD_LENGTH = 24


@dataclass(frozen=True)
class YcsbMix:
    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    read_modify_write: float = 0.0

    def pick(self, rng: random.Random) -> str:
        roll = rng.random()
        for op, weight in (
            ("read", self.read),
            ("update", self.update),
            ("insert", self.insert),
            ("scan", self.scan),
            ("read_modify_write", self.read_modify_write),
        ):
            roll -= weight
            if roll <= 0:
                return op
        return "read"


WORKLOAD_A = YcsbMix("A", read=0.5, update=0.5)
WORKLOAD_B = YcsbMix("B", read=0.95, update=0.05)
WORKLOAD_C = YcsbMix("C", read=1.0)
WORKLOAD_D = YcsbMix("D", read=0.95, insert=0.05)
WORKLOAD_E = YcsbMix("E", scan=0.95, insert=0.05)
WORKLOAD_F = YcsbMix("F", read=0.5, read_modify_write=0.5)

WORKLOADS = {mix.name: mix for mix in (
    WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D, WORKLOAD_E, WORKLOAD_F,
)}


class ZipfianGenerator:
    """Approximate zipfian key chooser (Gray et al. rejection-free form)."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 1):
        if n < 1:
            raise ValueError("need at least one key")
        self.n = n
        self.theta = theta
        self.rng = random.Random(seed)
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (
            (1.0 - (2.0 / n) ** (1.0 - theta))
            / (1.0 - self._zeta(2) / self._zetan)
        ) if n >= 2 else 0.0

    def _zeta(self, upto: int) -> float:
        return sum(1.0 / (i ** self.theta) for i in range(1, upto + 1))

    def next(self) -> int:
        """A key in [0, n): rank 0 is the hottest."""
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1.0) ** self._alpha)) % self.n


def build_ycsb_catalog(catalog: Optional[Catalog] = None) -> Catalog:
    if catalog is None:
        catalog = Catalog()
    catalog.define_table(
        "usertable",
        [Column("ycsb_key", ColumnType.INT, nullable=False)]
        + [Column(f"field{i}", ColumnType.TEXT) for i in range(FIELD_COUNT)],
        ["ycsb_key"],
    )
    return catalog


def _value(rng: random.Random) -> str:
    return "".join(rng.choices("abcdefghijklmnopqrstuvwxyz", k=FIELD_LENGTH))


def ycsb_rows(record_count: int, seed: int = 3):
    rng = random.Random(seed)
    for key in range(record_count):
        row = {"ycsb_key": key}
        for i in range(FIELD_COUNT):
            row[f"field{i}"] = _value(rng)
        yield row


def populate_ycsb(
    catalog: Catalog, loader: BulkLoader, record_count: int, seed: int = 3
) -> Generator:
    """Bulk-load the usertable; returns the row count."""
    count = yield from loader.load_table(
        "usertable", ycsb_rows(record_count, seed)
    )
    return count


class YcsbClient:
    """Generates and executes YCSB operations inside transactions."""

    def __init__(
        self,
        catalog: Catalog,
        indexes: IndexManager,
        record_count: int,
        mix: YcsbMix,
        theta: float = 0.99,
        scan_length: int = 20,
        seed: int = 1,
    ):
        self.catalog = catalog
        self.indexes = indexes
        self.mix = mix
        self.scan_length = scan_length
        self.rng = random.Random(seed)
        self.zipf = ZipfianGenerator(record_count, theta, seed ^ 0xBEEF)
        self._insert_cursor = record_count
        self._insert_stride = 10_000  # spread inserts across clients
        self._insert_offset = seed % self._insert_stride

    def next_operation(self) -> Tuple[str, Dict[str, Any]]:
        op = self.mix.pick(self.rng)
        if op in ("read", "update", "read_modify_write"):
            return op, {"key": self.zipf.next()}
        if op == "scan":
            return op, {
                "key": self.zipf.next(),
                "length": self.rng.randint(1, self.scan_length),
            }
        next_key = self._insert_cursor * self._insert_stride + self._insert_offset
        self._insert_cursor += 1
        return "insert", {"key": next_key}

    def execute(self, txn: Transaction, op: str, args: Dict[str, Any]) -> Generator:
        table = Table(self.catalog.table("usertable"), txn, self.indexes)
        if op == "read":
            return (yield from table.get((args["key"],)))
        if op == "update":
            found = yield from table.get((args["key"],))
            if found is None:
                return None
            rid, _row = found
            field = f"field{self.rng.randrange(FIELD_COUNT)}"
            return (yield from table.update_by_rid(rid, {field: _value(self.rng)}))
        if op == "read_modify_write":
            found = yield from table.get((args["key"],))
            if found is None:
                return None
            rid, row = found
            field_index = self.rng.randrange(FIELD_COUNT)
            current = row[1 + field_index] or ""
            return (yield from table.update_by_rid(
                rid, {f"field{field_index}": current[:4] + _value(self.rng)}
            ))
        if op == "scan":
            return (yield from table.index_range(
                table.schema.primary_index,
                (args["key"],), None, limit=args["length"],
            ))
        if op == "insert":
            row = {"ycsb_key": args["key"]}
            for i in range(FIELD_COUNT):
                row[f"field{i}"] = _value(self.rng)
            return (yield from table.insert(row))
        raise ValueError(f"unknown YCSB operation {op!r}")
