"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.api.runner import DirectRunner, Router
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.store.cluster import StorageCluster


@pytest.fixture
def cluster():
    """A small storage cluster without replication."""
    return StorageCluster(n_nodes=3, replication_factor=1)


@pytest.fixture
def replicated_cluster():
    """Three nodes, RF3: every partition exists everywhere."""
    return StorageCluster(n_nodes=3, replication_factor=3)


@pytest.fixture
def runner(cluster):
    """Direct runner with a commit manager attached."""
    commit_manager = CommitManager(0, cluster.execute, tid_range_size=64)
    return DirectRunner(Router(cluster, commit_manager, pn_id=0))


@pytest.fixture
def pn():
    return ProcessingNode(0)


@pytest.fixture
def db():
    """An embedded database, closed again after the test."""
    import repro

    with repro.connect(storage_nodes=3, replication_factor=1) as database:
        yield database


def interleave(router, generators):
    """Drive several protocol coroutines round-robin, one request each.

    This produces adversarial interleavings at every request boundary --
    the direct-mode analogue of concurrent PNs racing on shared state.
    Returns the list of results (StopIteration values) in input order.

    With interceptors configured, each coroutine gets its own router
    clone (sharing the same interceptor instances): stateful middleware
    such as the ``repro.san`` sanitizers attribute requests to logical
    workers by dispatch context, and a shared context would fold every
    interleaved transaction into one.
    """
    from repro.errors import TellError

    routers = [router] * len(generators)
    if router.interceptors:
        routers = [
            type(router)(router.cluster, router.commit_manager,
                         pn_id=router.pn_id,
                         interceptors=router.interceptors)
            for _ in generators
        ]
    states = [(i, gen, None, None) for i, gen in enumerate(generators)]
    results = [None] * len(generators)
    errors = [None] * len(generators)
    pending = states
    while pending:
        next_round = []
        for index, gen, value, exc in pending:
            try:
                if exc is not None:
                    request = gen.throw(exc)
                else:
                    request = gen.send(value)
            except StopIteration as stop:
                results[index] = stop.value
                continue
            except TellError as error:
                errors[index] = error
                continue
            try:
                outcome = routers[index].execute(request)
                next_round.append((index, gen, outcome, None))
            except TellError as error:
                next_round.append((index, gen, None, error))
        pending = next_round
    return results, errors
