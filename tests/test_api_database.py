"""Tests for the embedded Database API and sessions."""

import pytest

from repro.api import Database
from repro.errors import InvalidState, SqlSyntaxError


class TestDatabaseAssembly:
    def test_defaults(self):
        db = Database()
        assert len(db.cluster.nodes) == 3
        assert len(db.commit_managers) == 1

    def test_replicated(self):
        db = Database(storage_nodes=3, replication_factor=3)
        assert db.cluster.replication_factor == 3

    def test_requires_commit_manager(self):
        with pytest.raises(InvalidState):
            Database(commit_managers=0)

    def test_multiple_commit_managers_round_robin(self):
        db = Database(commit_managers=2)
        a = db.session()
        b = db.session()
        cm_a = db._runners[a.pn.pn_id].router.commit_manager
        cm_b = db._runners[b.pn.pn_id].router.commit_manager
        assert cm_a is not cm_b

    def test_buffering_strategy_selection(self):
        db = Database(buffering="sb")
        session = db.session()
        assert session.pn.buffers.name == "sb"


class TestElasticity:
    def test_add_remove_processing_nodes(self):
        db = Database()
        first = db.session()
        first.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        first.execute("INSERT INTO t VALUES (1, 1)")
        # new PNs see the data immediately -- no re-partitioning
        second = db.session()
        assert second.query("SELECT v FROM t") == [{"v": 1}]
        db.remove_processing_node(second.pn.pn_id)
        assert first.query("SELECT v FROM t") == [{"v": 1}]

    def test_many_sessions_share_data(self):
        db = Database()
        sessions = [db.session() for _ in range(4)]
        sessions[0].execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i, session in enumerate(sessions):
            session.execute("INSERT INTO t VALUES (?, ?)", [i, i * 10])
        total = sessions[3].query("SELECT COUNT(*) AS n FROM t")
        assert total == [{"n": 4}]

    def test_storage_elasticity(self):
        db = Database(storage_nodes=2)
        db.cluster.add_node()
        assert len(db.cluster.nodes) == 3


class TestSessionBehaviour:
    def test_double_begin_rejected(self):
        session = Database().session()
        session.execute("BEGIN")
        with pytest.raises(InvalidState):
            session.execute("BEGIN")

    def test_commit_without_begin_rejected(self):
        session = Database().session()
        with pytest.raises(InvalidState):
            session.execute("COMMIT")

    def test_ddl_inside_transaction_rejected(self):
        session = Database().session()
        session.execute("BEGIN")
        with pytest.raises(InvalidState):
            session.execute("CREATE TABLE t (id INT PRIMARY KEY)")

    def test_syntax_error_propagates(self):
        session = Database().session()
        with pytest.raises(SqlSyntaxError):
            session.execute("SELEKT 1")

    def test_autocommit_insert_is_atomic(self):
        from repro.errors import DuplicateKey, TransactionAborted

        session = Database().session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1)")
        with pytest.raises((DuplicateKey, TransactionAborted)):
            # multi-row insert with a duplicate: all-or-nothing
            session.execute("INSERT INTO t VALUES (2), (1), (3)")
        rows = session.query("SELECT id FROM t ORDER BY id")
        assert [r["id"] for r in rows] == [1]

    def test_catalog_propagates_across_sessions(self):
        db = Database()
        a = db.session()
        b = db.session()
        a.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        b.refresh_catalog()
        assert b.catalog.has_table("t")

    def test_drop_table(self):
        from repro.errors import SchemaError

        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("DROP TABLE t")
        with pytest.raises(SchemaError):
            session.query("SELECT * FROM t")

    def test_create_index_backfills(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        session.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a')")
        session.execute("CREATE INDEX t_v ON t (v)")
        rows = session.query("SELECT id FROM t WHERE v = 'a' ORDER BY id")
        assert [r["id"] for r in rows] == [1, 3]

    def test_table_handle_requires_transaction(self):
        session = Database().session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with pytest.raises(InvalidState):
            session.table("t")


class TestCommitManagerSync:
    def test_sync_commit_managers(self):
        db = Database(commit_managers=2)
        a = db.session()
        b = db.session()
        a.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        b.refresh_catalog()
        a.execute("INSERT INTO t VALUES (1, 1)")
        db.sync_commit_managers()
        assert b.query("SELECT v FROM t WHERE id = 1") == [{"v": 1}]

    def test_lowest_active_version(self):
        db = Database(commit_managers=2)
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        assert db.lowest_active_version() >= 0
