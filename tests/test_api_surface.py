"""Tests for the modern public API: connect(), context managers, results."""

import pytest

import repro
from repro.api import Database, DatabaseConfig
from repro.errors import (DuplicateKey, InvalidState, MultipleResultRows,
                          NoResultRows, TransactionAborted)


class TestConnect:
    def test_connect_returns_open_database(self):
        db = repro.connect()
        assert isinstance(db, Database)
        assert not db.closed
        db.close()

    def test_connect_accepts_config_object(self):
        config = DatabaseConfig(storage_nodes=2, commit_managers=2)
        with repro.connect(config) as db:
            assert db.config is config
            assert len(db.commit_managers) == 2

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(InvalidState):
            repro.connect(DatabaseConfig(), storage_nodes=4)

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError):
            repro.connect(storage_nods=3)

    @pytest.mark.parametrize("bad", [
        dict(commit_managers=0),
        dict(storage_nodes=0),
        dict(replication_factor=0),
        dict(replication_factor=4, storage_nodes=2),
        dict(partitions_per_node=0),
        dict(tid_range_size=0),
        dict(buffering="lru"),
        dict(buffering="sbvsbig"),
    ])
    def test_validation_single_point(self, bad):
        with pytest.raises(InvalidState):
            repro.connect(**bad)
        with pytest.raises(InvalidState):
            DatabaseConfig(**bad)

    def test_valid_buffering_spellings(self):
        for name in ("tb", "sb", "sbvs", "sbvs16"):
            DatabaseConfig(buffering=name)

    def test_config_is_frozen(self):
        config = DatabaseConfig()
        with pytest.raises(Exception):
            config.storage_nodes = 9

    def test_with_copies_and_revalidates(self):
        config = DatabaseConfig(storage_nodes=4)
        copy = config.with_(buffering="sbvs16")
        assert copy.buffering == "sbvs16"
        assert copy.storage_nodes == 4
        with pytest.raises(InvalidState):
            config.with_(replication_factor=9)

    def test_legacy_keyword_construction_still_works(self):
        db = Database(storage_nodes=2, replication_factor=2)
        assert len(db.cluster.nodes) == 2
        assert db.buffering == "tb"
        with pytest.raises(InvalidState):
            Database(commit_managers=0)


class TestDatabaseLifecycle:
    def test_context_manager_closes(self):
        with repro.connect() as db:
            db.session()
        assert db.closed
        with pytest.raises(InvalidState):
            db.session()
        with pytest.raises(InvalidState):
            db.add_processing_node()

    def test_close_is_idempotent(self):
        db = repro.connect()
        db.close()
        db.close()
        assert db.closed


class TestSessionLifecycle:
    def test_session_context_manager_rolls_back_open_txn(self, db):
        with db.session() as session:
            session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            session.execute("BEGIN")
            session.execute("INSERT INTO t VALUES (1)")
            # leaving the with-block without COMMIT
        assert session.closed
        check = db.session()
        assert check.query("SELECT * FROM t") == []
        active = sum(len(m.active_transactions()) for m in db.commit_managers)
        assert active == 0

    def test_closed_session_refuses_sql(self, db):
        session = db.session()
        session.close()
        with pytest.raises(InvalidState):
            session.execute("SELECT 1 FROM t")
        with pytest.raises(InvalidState):
            session.begin()

    def test_close_is_idempotent(self, db):
        session = db.session()
        session.begin()
        session.close()
        session.close()
        assert not session.in_transaction


class TestTransactionScope:
    def test_commit_on_clean_exit(self, db):
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        with session.transaction():
            session.execute("INSERT INTO t VALUES (1, 10)")
            session.execute("INSERT INTO t VALUES (2, 20)")
        assert not session.in_transaction
        assert db.session().query("SELECT COUNT(*) AS n FROM t")[0]["n"] == 2

    def test_rollback_on_exception_propagates(self, db):
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with pytest.raises(RuntimeError, match="boom"):
            with session.transaction():
                session.execute("INSERT INTO t VALUES (1)")
                raise RuntimeError("boom")
        assert not session.in_transaction
        assert session.query("SELECT * FROM t") == []

    def test_manual_commit_inside_scope_is_honored(self, db):
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with session.transaction():
            session.execute("INSERT INTO t VALUES (1)")
            session.execute("COMMIT")
        assert session.query("SELECT * FROM t") != []

    def test_manual_rollback_inside_scope_is_honored(self, db):
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with session.transaction():
            session.execute("INSERT INTO t VALUES (1)")
            session.rollback()
        assert session.query("SELECT * FROM t") == []

    def test_conflict_surfaces_as_transaction_aborted(self, db):
        a, b = db.session(), db.session()
        a.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        a.execute("INSERT INTO t VALUES (1, 0)")
        with pytest.raises(TransactionAborted):
            with a.transaction():
                a.execute("UPDATE t SET v = 1 WHERE id = 1")
                with b.transaction():
                    b.execute("UPDATE t SET v = 2 WHERE id = 1")
        assert not a.in_transaction

    def test_nested_scope_rejected(self, db):
        session = db.session()
        with session.transaction():
            with pytest.raises(InvalidState):
                with session.transaction():
                    pass

    def test_transaction_object_is_yielded(self, db):
        session = db.session()
        with session.transaction() as txn:
            assert txn is session._txn


class TestResultSurface:
    @pytest.fixture
    def session(self, db):
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        session.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        return session

    def test_execute_always_returns_result_set(self, session):
        result = session.execute("SELECT * FROM t")
        assert result.columns == ["id", "v"]
        assert result.rowcount == 2
        assert result.dicts() == [{"id": 1, "v": "a"}, {"id": 2, "v": "b"}]

    def test_one_returns_single_row(self, session):
        assert session.execute(
            "SELECT v FROM t WHERE id = 1").one() == ("a",)

    def test_one_raises_on_empty(self, session):
        with pytest.raises(NoResultRows):
            session.execute("SELECT v FROM t WHERE id = 9").one()

    def test_one_raises_on_multiple(self, session):
        with pytest.raises(MultipleResultRows):
            session.execute("SELECT v FROM t").one()

    def test_scalar_is_lenient(self, session):
        assert session.execute("SELECT v FROM t WHERE id = 2").scalar() == "b"
        assert session.execute("SELECT v FROM t WHERE id = 9").scalar() is None

    def test_query_is_dict_convenience(self, session):
        assert session.query("SELECT id FROM t WHERE id = 1") == [{"id": 1}]


class TestBackfillAbort:
    def test_failed_backfill_aborts_its_transaction(self, db):
        session = db.session()
        session.execute("CREATE TABLE d (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO d VALUES (1, 5), (2, 5)")
        with pytest.raises(DuplicateKey):
            session.execute("CREATE UNIQUE INDEX d_v ON d (v)")
        # The backfill transaction must not linger holding the lav down.
        active = sum(len(m.active_transactions()) for m in db.commit_managers)
        assert active == 0
        # The session stays usable.
        with session.transaction():
            session.execute("INSERT INTO d VALUES (3, 6)")
        assert session.query(
            "SELECT COUNT(*) AS n FROM d")[0]["n"] == 3
