"""Tests for repro-atomic (`repro-lint --atomic`): every RA rule catches
its planted interleaving bug with a yield-site witness and stays quiet
on the clean variant, the seeded-mutation guards prove the analyzer
would have caught real bugs in core/, the analyzer-schema cache stamp
invalidates stale summaries, parallel extraction is equivalent to
serial, and the shipped tree is atomic-clean."""

import json
import os
import textwrap
from pathlib import Path

import pytest

from repro.lint import SourceModule, lint_sources
from repro.lint.cache import ANALYZER_SCHEMA, SummaryCache
from repro.lint.cli import main as lint_main
from repro.lint.engine import load_sources
from repro.lint.flow.analysis import FlowAnalysis
from repro.lint.flow.atomic import ANALYZER_VERSION
from repro.lint.flow.summary import extract_module_flow
from repro.lint.index import ModuleSummary, ProjectIndex
from repro.lint.parallel import _extract_one, extract_flows

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")


def _modules(*pairs):
    return [
        SourceModule(f"<{module}>", module, textwrap.dedent(text))
        for module, text in pairs
    ]


def atomic_findings(*pairs):
    return [
        f for f in lint_sources(_modules(*pairs), flow=True,
                                atomic=True).findings
        if f.rule.startswith("RA")
    ]


def atomic_codes(*pairs):
    return sorted({f.rule for f in atomic_findings(*pairs)})


@pytest.fixture(scope="module")
def src_sources():
    return load_sources([SRC], relative_to=str(REPO_ROOT))


@pytest.fixture(scope="module")
def src_atomic(src_sources):
    summaries = {
        s.module: ModuleSummary(s.module, s.tree)
        for s in src_sources if s.tree is not None and not s.skip_file
    }
    flows = {
        s.module: extract_module_flow(summaries[s.module], s.tree)
        for s in src_sources if s.tree is not None and not s.skip_file
    }
    analysis = FlowAnalysis(ProjectIndex(summaries), flows, atomic=True)
    return analysis.atomic


def mutate(src_sources, edits):
    """Re-lint the real tree with planted text edits; RA findings."""
    sources = list(src_sources)
    for path_suffix, old, new in edits:
        hit = False
        for i, source in enumerate(sources):
            if source.path.replace(os.sep, "/").endswith(path_suffix):
                assert old in source.text, f"pattern missing in {source.path}"
                sources[i] = SourceModule(
                    source.path, source.module,
                    source.text.replace(old, new, 1))
                hit = True
        assert hit, path_suffix
    return [f for f in lint_sources(sources, flow=True,
                                    atomic=True).findings
            if f.rule.startswith("RA")]


# ---------------------------------------------------------------------------
# Shipped tree is atomic-clean
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_atomic_lint_clean_on_src(self, src_sources):
        result = lint_sources(src_sources, flow=True, atomic=True)
        assert result.findings == [], [str(f) for f in result.findings]


# ---------------------------------------------------------------------------
# RA001: stale pre-yield read guards an unconditional shared write
# ---------------------------------------------------------------------------

_CM_FIXTURE_HEADER = """\
    from repro import effects
    from repro.core.commit_manager import CommitManager

    class Worker(CommitManager):
"""


class TestRA001:
    def test_stale_guard_over_unconditional_put(self):
        findings = atomic_findings(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def drain(self, key):
            count = self._active_base.get(key)
            yield effects.Sleep(1)
            if count is not None:
                yield effects.Put("data", key, count)
    """))
        assert [f.rule for f in findings] == ["RA001"]
        # The witness names the guard, the footprint, and the yield site.
        assert "_active_base" in findings[0].message
        assert "preemption point" in findings[0].message

    def test_conditional_putifversion_is_sanctioned(self):
        assert atomic_codes(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def drain(self, key):
            count, ver = yield effects.Get("data", key)
            yield effects.Sleep(1)
            if count is not None:
                ok, _ = yield effects.PutIfVersion("data", key, count, ver)
    """)) == []

    def test_reread_after_yield_is_clean(self):
        assert atomic_codes(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def drain(self, key):
            count = self._active_base.get(key)
            yield effects.Sleep(1)
            count = self._active_base.get(key)
            if count is not None:
                yield effects.Put("data", key, count)
    """)) == []

    def test_outside_atomic_packages_is_silent(self):
        assert atomic_codes(("repro.bench.fixture", _CM_FIXTURE_HEADER + """\
        def drain(self, key):
            count = self._active_base.get(key)
            yield effects.Sleep(1)
            if count is not None:
                yield effects.Put("data", key, count)
    """)) == []


# ---------------------------------------------------------------------------
# RA002: shared collection mutated on both sides of a yield
# ---------------------------------------------------------------------------


class TestRA002:
    def test_subscript_stores_across_yield(self):
        findings = atomic_findings(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def absorb(self, peers):
            for peer in peers:
                value = yield effects.Get("meta", peer)
                self._peer_lav[peer] = value
    """))
        assert [f.rule for f in findings] == ["RA002"]
        assert "_peer_lav" in findings[0].message

    def test_reread_after_yield_silences(self):
        assert atomic_codes(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def absorb(self, peers):
            for peer in peers:
                value = yield effects.Get("meta", peer)
                if peer not in self._peer_lav:
                    self._peer_lav[peer] = value
    """)) == []

    def test_single_segment_mutations_are_clean(self):
        assert atomic_codes(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def absorb(self, peers):
            values = yield effects.Get("meta", "all")
            for peer in peers:
                self._peer_lav[peer] = values
    """)) == []

    def test_inline_suppression(self):
        src = _CM_FIXTURE_HEADER + """\
        def absorb(self, peers):
            for peer in peers:
                value = yield effects.Get("meta", peer)
                # repro-lint: ignore[RA002] single writer per peer id
                self._peer_lav[peer] = value
    """
        result = lint_sources(
            _modules(("repro.core.fixture", src)), flow=True, atomic=True)
        assert [f.rule for f in result.findings] == []
        assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RA003: invariant pair torn across a yield
# ---------------------------------------------------------------------------


class TestRA003:
    def test_pair_split_by_sleep(self):
        findings = atomic_findings(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def retire(self, tid):
            self.completed.mark_completed(tid)
            yield effects.Sleep(1)
            self._next_stripe += 1
    """))
        codes = [f.rule for f in findings]
        assert "RA003" in codes
        ra3 = next(f for f in findings if f.rule == "RA003")
        assert "completed" in ra3.message and "_next_stripe" in ra3.message

    def test_pair_same_segment_is_clean(self):
        assert atomic_codes(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def retire(self, tid):
            yield effects.Sleep(1)
            self.completed.mark_completed(tid)
            self._next_stripe += 1
    """)) == []

    def test_single_member_write_is_clean(self):
        assert atomic_codes(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def retire(self, tid):
            self.completed.mark_completed(tid)
            yield effects.Sleep(1)
    """)) == []


# ---------------------------------------------------------------------------
# RA004: transaction typestate
# ---------------------------------------------------------------------------

# Annotations only type a name when the named class is in the project
# index, so fixture runs carry stand-in modules for the real ones.
_TXN_STUB = ("repro.core.transaction", """\
    class TxnState:
        RUNNING = "running"
        COMMITTED = "committed"
        ABORTED = "aborted"

    class Transaction:
        def commit(self):
            yield None

        def abort(self):
            yield None

        def read(self, key):
            yield None

        def read_many(self, keys):
            yield None
""")

_PN_STUB = ("repro.core.processing_node", """\
    from repro.core.transaction import Transaction

    class ProcessingNode:
        def begin(self):
            yield None
            return Transaction()
""")

_TXN_FIXTURE = """\
    from repro import effects
    from repro.core.transaction import Transaction

    def finish_and_use(txn: Transaction):
        yield from txn.commit()
        value = yield from txn.read("key")
        return value
"""


class TestRA004:
    def test_read_after_commit(self):
        findings = atomic_findings(
            _TXN_STUB, ("repro.sql.fixture", _TXN_FIXTURE))
        assert [f.rule for f in findings] == ["RA004"]
        assert ".read(...)" in findings[0].message
        assert ".commit(...)" in findings[0].message

    def test_double_finish(self):
        findings = atomic_findings(_TXN_STUB, ("repro.sql.fixture", """\
    from repro.core.transaction import Transaction

    def twice(txn: Transaction):
        yield from txn.abort()
        yield from txn.abort()
    """))
        assert [f.rule for f in findings] == ["RA004"]
        assert "finished again" in findings[0].message

    def test_branch_join_keeps_agreeing_state_only(self):
        # Finish on one branch only: the join forgets the state, so the
        # later use is not provably after a finish -- silent.
        assert atomic_codes(_TXN_STUB, ("repro.sql.fixture", """\
    from repro.core.transaction import Transaction

    def maybe(txn: Transaction, flag):
        if flag:
            yield from txn.abort()
            return
        value = yield from txn.read("key")
        return value
    """)) == []

    def test_rebinding_resets_contract(self):
        assert atomic_codes(_TXN_STUB, _PN_STUB, ("repro.sql.fixture", """\
    from repro.core.transaction import Transaction
    from repro.core.processing_node import ProcessingNode

    def recycle(pn: ProcessingNode, txn: Transaction):
        yield from txn.commit()
        txn = yield from pn.begin()
        value = yield from txn.read("key")
        return value
    """)) == []

    def test_propagated_finish_is_maybe_not_fired(self):
        # A callee that (per its summary) finishes the transaction
        # downgrades certainty; a later direct use stays silent.
        assert atomic_codes(_TXN_STUB, ("repro.sql.fixture", """\
    from repro.core.transaction import Transaction

    def helper(txn: Transaction, flag):
        if flag:
            yield from txn.abort()

    def outer(txn: Transaction, flag):
        yield from helper(txn, flag)
        value = yield from txn.read("key")
        return value
    """)) == []


# ---------------------------------------------------------------------------
# RA005: abort reporting obligations
# ---------------------------------------------------------------------------


class TestRA005:
    def test_state_abort_without_report(self):
        findings = atomic_findings(_TXN_STUB, ("repro.core.fixture", """\
    from repro import effects
    from repro.core.transaction import Transaction, TxnState

    def silent_abort(txn: Transaction):
        txn.state = TxnState.ABORTED
        yield effects.Sleep(1)
    """))
        assert [f.rule for f in findings] == ["RA005"]
        assert "ReportAborted" in findings[0].message

    def test_state_abort_with_report_is_clean(self):
        assert atomic_codes(_TXN_STUB, ("repro.core.fixture", """\
    from repro import effects
    from repro.core.transaction import Transaction, TxnState

    def loud_abort(txn: Transaction):
        txn.state = TxnState.ABORTED
        yield effects.ReportAborted(txn.tid)
    """)) == []

    def test_register_without_on_aborted(self):
        findings = atomic_findings(("repro.core.fixture", """\
    class Pipeline:
        def __init__(self, validator):
            self.validator = validator

        def admit(self, tid, writes):
            return self.validator.validate_and_register(tid, writes)
    """))
        assert [f.rule for f in findings] == ["RA005"]
        assert "on_aborted" in findings[0].message

    def test_register_with_on_aborted_is_clean(self):
        assert atomic_codes(("repro.core.fixture", """\
    class Pipeline:
        def __init__(self, validator):
            self.validator = validator

        def admit(self, tid, writes):
            return self.validator.validate_and_register(tid, writes)

        def drop(self, tid):
            self.validator.on_aborted(tid)
    """)) == []


# ---------------------------------------------------------------------------
# Seeded-mutation guards: plant real interleaving bugs in core/ and
# assert the analyzer reports them with a yield-site witness
# ---------------------------------------------------------------------------


class TestSeededMutations:
    def test_gc_unconditional_put_is_caught(self, src_sources):
        """Replacing lazy GC's LL/SC prune write with an unconditional
        Put reintroduces the lost-update race RA001 exists for."""
        findings = mutate(src_sources, [(
            "core/gc.py",
            "ok, _ = yield effects.PutIfVersion(DATA_SPACE, key, pruned,"
            " cell_version)",
            "yield effects.Put(DATA_SPACE, key, pruned)",
        )])
        assert [f.rule for f in findings] == ["RA001"]
        message = findings[0].message
        # Witness: guard value origin (the Scan yield) + preemption point.
        assert "yield effects.Scan(...)" in message
        assert "preemption point at line" in message

    def test_cm_absorb_coroutine_is_caught(self, src_sources):
        """Turning the synchronous peer-absorb loop into a coroutine
        that Gets each peer state across a yield tears the peer maps."""
        findings = mutate(src_sources, [(
            "core/commit_manager.py",
            "            value, _version = self.store_execute(\n"
            "                effects.Get(META_SPACE, _state_key(peer_id))\n"
            "            )",
            "            value, _version = yield effects.Get(\n"
            "                META_SPACE, _state_key(peer_id))",
        )])
        assert {f.rule for f in findings} == {"RA002"}
        assert any("_peer_lav" in f.message or "_peer_last_tid" in f.message
                   for f in findings)
        assert all("preemption point at line" in f.message
                   for f in findings)

    def test_cm_stripe_pair_torn_is_caught(self, src_sources):
        """A yield between mark_completed and the stripe-cursor bump
        lets peers observe a completed tid the cursor can still hand
        out -- the RA003 invariant pair."""
        findings = mutate(src_sources, [(
            "core/commit_manager.py",
            "            self.completed.mark_completed(tid)\n"
            "            self._next_stripe += 1\n"
            "\n"
            "    # -- read-only introspection",
            "            self.completed.mark_completed(tid)\n"
            "            yield effects.Sleep(1)\n"
            "            self._next_stripe += 1\n"
            "\n"
            "    # -- read-only introspection",
        )])
        codes = {f.rule for f in findings}
        assert "RA003" in codes
        ra3 = next(f for f in findings if f.rule == "RA003")
        assert "completed" in ra3.message
        assert "_next_stripe" in ra3.message
        assert "preemption point at line" in ra3.message

    def test_txn_use_after_abort_is_caught(self, src_sources):
        """Reading through the transaction after abort released its
        snapshot is the RA004 typestate violation."""
        findings = mutate(src_sources, [(
            "core/transaction.py",
            "        yield effects.ReportAborted(self.tid)\n"
            "        if",
            "        yield effects.ReportAborted(self.tid)\n"
            "        leftover = yield from self.read_many("
            "list(self._cache))\n"
            "        if",
        )])
        assert [f.rule for f in findings] == ["RA004"]
        message = findings[0].message
        assert "state = TxnState.ABORTED" in message
        assert ".read_many(...)" in message

    def test_dropped_on_aborted_is_caught(self, src_sources):
        """Deleting the validator release on the abort path leaks every
        aborted writer into the SSI in-flight window -- RA005(b)."""
        findings = mutate(src_sources, [(
            "core/commit_manager.py",
            "self.validator.on_aborted(tid)",
            "pass",
        )])
        assert [f.rule for f in findings] == ["RA005"]
        assert "validate_and_register" in findings[0].message

    def test_dropped_report_aborted_is_caught(self, src_sources):
        """An abort that flips the state but never notifies the commit
        manager pins the GC horizon forever -- RA005(a)."""
        findings = mutate(src_sources, [(
            "core/transaction.py",
            "        self.state = TxnState.ABORTED\n"
            "        span = self.span\n"
            "        abort_child = span.child(\"abort\") "
            "if span is not None else None\n"
            "        yield effects.ReportAborted(self.tid)",
            "        self.state = TxnState.ABORTED\n"
            "        span = self.span\n"
            "        abort_child = span.child(\"abort\") "
            "if span is not None else None\n"
            "        yield effects.Sleep(0)",
        )])
        assert [f.rule for f in findings] == ["RA005"]
        assert "ReportAborted" in findings[0].message


# ---------------------------------------------------------------------------
# Yield-point summaries (the analysis API itself)
# ---------------------------------------------------------------------------


class TestYieldSummaries:
    def test_summary_reports_read_before_write_after(self):
        sources = _modules(("repro.core.fixture", _CM_FIXTURE_HEADER + """\
        def probe(self, key):
            base = self._active_base.get(key)
            yield effects.Sleep(1)
            self._peer_lav[key] = base
    """))
        summaries = {s.module: ModuleSummary(s.module, s.tree)
                     for s in sources}
        flows = {s.module: extract_module_flow(summaries[s.module], s.tree)
                 for s in sources}
        analysis = FlowAnalysis(ProjectIndex(summaries), flows, atomic=True)
        points = analysis.atomic.yield_summary(
            ("repro.core.fixture", "Worker.probe"))
        assert len(points) == 1
        # The owning class attribution depends on which modules are in the
        # index; the footprint attribute names are the stable part.
        assert [fp.split(".")[-1] for fp in points[0]["reads_before"]] == \
            ["_active_base"]
        assert [fp.split(".")[-1] for fp in points[0]["writes_after"]] == \
            ["_peer_lav"]

    def test_shipped_cm_methods_are_synchronous(self, src_atomic):
        # The stripe-pair writers must have no preemption points at all:
        # that is the invariant RA003 freezes.
        for method in ("_retire_idle_stripe_tids", "_advance_stripe_past",
                       "_finish", "start"):
            node = ("repro.core.commit_manager", f"CommitManager.{method}")
            assert src_atomic.yield_summary(node) == [], method

    def test_report_aborted_closure_covers_finish_abort(self, src_atomic):
        assert ("repro.core.transaction",
                "Transaction._finish_abort") in src_atomic.report_aborted
        assert ("repro.core.transaction",
                "Transaction.abort") in src_atomic.report_aborted


# ---------------------------------------------------------------------------
# Cache schema stamp (satellite: analyzer upgrades invalidate warm caches)
# ---------------------------------------------------------------------------


class TestCacheSchema:
    def test_schema_mismatch_starts_cold(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f():\n    return 1\n")
        cache_file = tmp_path / "cache.json"

        cache = SummaryCache(str(cache_file))
        summary = ModuleSummary("mod", __import__("ast").parse(
            target.read_text()))
        flow = extract_module_flow(summary, __import__("ast").parse(
            target.read_text()))
        cache.store(str(target), summary, flow)
        cache.save()

        warm = SummaryCache(str(cache_file))
        assert warm.lookup(str(target)) is not None

        # Same file bytes, older analyzer stamp: must miss, not reuse.
        data = json.loads(cache_file.read_text())
        assert data["schema"] == ANALYZER_SCHEMA
        data["schema"] = "1/0/repro-atomic/0/RL001"
        cache_file.write_text(json.dumps(data))
        stale = SummaryCache(str(cache_file))
        assert stale.lookup(str(target)) is None

    def test_schema_folds_in_rule_codes_and_analyzer(self):
        assert ANALYZER_VERSION in ANALYZER_SCHEMA
        for code in ("RA001", "RA005", "RF001", "RL001"):
            assert code in ANALYZER_SCHEMA


# ---------------------------------------------------------------------------
# Parallel extraction (satellite: --jobs)
# ---------------------------------------------------------------------------


class TestParallelExtraction:
    def test_worker_output_equals_inprocess_extraction(self, src_sources):
        picked = [s for s in src_sources
                  if s.module.startswith("repro.core")][:6]
        for source in picked:
            _path, summary_data, flow_data = _extract_one(
                (source.path, source.module, source.text))
            summary = ModuleSummary(source.module, source.tree)
            flow = extract_module_flow(summary, source.tree)
            assert summary_data == summary.to_dict()
            assert flow_data == flow.to_dict()

    def test_extract_flows_matches_serial(self, src_sources):
        items = [(s.path, s.module, s.text)
                 for s in src_sources
                 if s.module.startswith("repro.core")][:8]
        parallel = extract_flows(items, jobs=4)
        serial = {path: (summary, flow)
                  for path, summary, flow in map(_extract_one, items)}
        assert parallel == serial

    def test_jobs_cli_run_is_equivalent(self, src_sources):
        serial = lint_sources(src_sources, flow=True, atomic=True)
        parallel = lint_sources(src_sources, flow=True, atomic=True,
                                jobs=4)
        assert [str(f) for f in parallel.findings] == \
            [str(f) for f in serial.findings]
        assert parallel.files_checked == serial.files_checked

    def test_syntax_error_returns_none(self):
        path, summary, flow = _extract_one(("<x>", "x", "def broken(:"))
        assert summary is None and flow is None


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCLI:
    def test_list_rules_renders_ra_family(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RA001", "RA002", "RA003", "RA004", "RA005"):
            assert f"{code} " in out
        assert "[--atomic]" in out

    def test_explain_ra_rule(self, capsys):
        assert lint_main(["--explain", "RA004"]) == 0
        out = capsys.readouterr().out
        assert "RA004" in out
        assert "typestate" in out.lower() or "contract" in out.lower()

    def test_atomic_implies_flow_and_src_is_clean(self, capsys):
        code = lint_main(["--atomic", "--no-baseline", SRC])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "clean" in out

    def test_json_schema_family_and_analyzer(self, capsys, tmp_path):
        bad = tmp_path / "fixture.py"
        bad.write_text(textwrap.dedent("""\
            import time

            def now():
                return time.time()
        """))
        code = lint_main(["--json", "--no-baseline", "--flow", "--atomic",
                          str(bad)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-lint-findings/2"
        assert payload["analyzer"] == ANALYZER_VERSION
        # Old fields are all still present.
        for field in ("findings", "files_checked", "baselined",
                      "suppressed"):
            assert field in payload
        for finding in payload["findings"]:
            assert finding["family"] in ("RL", "RF", "RA")
        assert code in (0, 1)
