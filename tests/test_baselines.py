"""Tests for the baseline engines (Figures 8/9 comparators)."""

import pytest

from repro.baselines import (
    BaselineConfig,
    FoundationDBLike,
    MySqlClusterLike,
    TxnWork,
    VoltDBLike,
    txn_work,
)
from repro.workloads.tpcc.params import ParamGenerator, TpccScale

SCALE = TpccScale.small(8)
#: Engines need warehouses >= partitions for placement to spread
#: (3-9 nodes x 6 sites = up to 54 partitions).
WIDE_SCALE = TpccScale.small(80)


def config(**overrides):
    defaults = dict(
        nodes=3,
        scale=WIDE_SCALE,
        mix="standard",
        terminals=48,
        duration_us=1_000_000.0,
        warmup_us=100_000.0,
        seed=3,
    )
    defaults.update(overrides)
    return BaselineConfig(**defaults)


class TestTxnWork:
    def test_new_order_profile(self):
        gen = ParamGenerator(SCALE, seed=1)
        params = gen.new_order()
        work = txn_work("new_order", params, SCALE)
        n = len(params.items)
        assert work.rows_read == 3 + 2 * n
        assert work.rows_written == 2 + 3 * n
        assert params.w_id in work.warehouses

    def test_remote_payment_is_distributed(self):
        gen = ParamGenerator(SCALE, seed=1)
        params = gen.payment()
        params.c_w_id = params.w_id + 1
        work = txn_work("payment", params, SCALE)
        assert work.is_distributed

    def test_read_only_transactions(self):
        gen = ParamGenerator(SCALE, seed=1)
        for name in ("order_status", "stock_level"):
            work = txn_work(name, getattr(gen, name)(), SCALE)
            assert work.rows_written == 0
            assert not work.is_distributed

    def test_delivery_scales_with_districts(self):
        gen = ParamGenerator(SCALE, seed=1)
        work = txn_work("delivery", gen.delivery(), SCALE)
        assert work.rows_written == 13 * SCALE.districts_per_warehouse


class TestVoltDBLike:
    def test_shardable_scales_with_nodes(self):
        small = VoltDBLike(config(mix="shardable", terminals=60)).run()
        large = VoltDBLike(
            config(mix="shardable", nodes=9, terminals=180)
        ).run()
        assert large.tpmc > small.tpmc * 2

    def test_standard_mix_degrades_with_nodes(self):
        """The paper's key observation: cross-partition transactions make
        VoltDB slower as nodes are added."""
        small = VoltDBLike(config(terminals=120)).run()
        large = VoltDBLike(config(nodes=9, terminals=360)).run()
        assert large.tpmc < small.tpmc

    def test_shardable_beats_standard(self):
        standard = VoltDBLike(config(terminals=120)).run()
        shardable = VoltDBLike(
            config(mix="shardable", terminals=120)
        ).run()
        assert shardable.tpmc > standard.tpmc * 3

    def test_replication_cost_moderate(self):
        rf1 = VoltDBLike(
            config(mix="shardable", replication_factor=1, terminals=120)
        ).run()
        rf3 = VoltDBLike(
            config(mix="shardable", replication_factor=3, terminals=120)
        ).run()
        assert rf3.tpmc < rf1.tpmc
        assert rf3.tpmc > rf1.tpmc * 0.7  # ~-13% in the paper

    def test_standard_latency_much_worse_than_shardable(self):
        standard = VoltDBLike(config(terminals=120)).run()
        shardable = VoltDBLike(config(mix="shardable", terminals=120)).run()
        assert standard.latency().mean_us > 3 * shardable.latency().mean_us


class TestMySqlClusterLike:
    def test_throughput_nearly_flat_with_nodes(self):
        small = MySqlClusterLike(config(terminals=96)).run()
        large = MySqlClusterLike(config(nodes=9, terminals=288)).run()
        assert large.tpmc < small.tpmc * 3.5  # grows, but far from linear

    def test_shardable_barely_helps(self):
        """Paper: MySQL Cluster is only 1-2% faster on the shardable mix."""
        standard = MySqlClusterLike(config(terminals=96)).run()
        shardable = MySqlClusterLike(
            config(mix="shardable", terminals=96)
        ).run()
        assert shardable.tpmc < standard.tpmc * 1.4

    def test_beats_voltdb_on_standard_mix_at_scale(self):
        voltdb = VoltDBLike(config(nodes=9, terminals=360)).run()
        mysql = MySqlClusterLike(config(nodes=9, terminals=288)).run()
        assert mysql.tpmc > voltdb.tpmc


class TestFoundationDBLike:
    def test_scales_with_nodes(self):
        small = FoundationDBLike(
            config(terminals=36, duration_us=3_000_000.0)
        ).run()
        large = FoundationDBLike(
            config(nodes=9, terminals=108, duration_us=3_000_000.0)
        ).run()
        assert large.tpmc > small.tpmc * 1.8

    def test_orders_of_magnitude_below_others(self):
        fdb = FoundationDBLike(
            config(terminals=36, duration_us=3_000_000.0)
        ).run()
        mysql = MySqlClusterLike(config(terminals=96)).run()
        assert fdb.tpmc * 5 < mysql.tpmc

    def test_latency_in_hundreds_of_ms(self):
        fdb = FoundationDBLike(
            config(terminals=36, duration_us=3_000_000.0)
        ).run()
        assert 50_000 < fdb.latency().mean_us < 1_500_000


class TestBaselineFraming:
    def test_one_percent_rollbacks_counted(self):
        metrics = VoltDBLike(
            config(terminals=60, duration_us=3_000_000.0)
        ).run()
        user_aborts = sum(metrics.user_aborts.values())
        assert user_aborts > 0
        assert metrics.committed.get("new_order", 0) > user_aborts

    def test_deterministic(self):
        a = VoltDBLike(config(terminals=24)).run()
        b = VoltDBLike(config(terminals=24)).run()
        assert a.total_committed == b.total_committed
