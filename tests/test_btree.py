"""Tests for the latch-free distributed B+tree (Section 5.3)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.errors import DuplicateKey, InvalidState
from repro.index.btree import BTreeNode, DistributedBTree
from repro.store.cluster import StorageCluster
from tests.conftest import interleave


@pytest.fixture
def env():
    cluster = StorageCluster(n_nodes=3)
    router = Router(cluster)
    runner = DirectRunner(router)
    tree = DistributedBTree(index_id=1, max_entries=6)
    runner.run(tree.create())
    return cluster, router, runner, tree


def fresh_handle(env, **kwargs):
    """A second tree handle: simulates another PN (separate cache)."""
    _cluster, _router, runner, tree = env
    other = DistributedBTree(index_id=tree.index_id, max_entries=tree.max_entries,
                             **kwargs)
    return other


class TestBasicOperations:
    def test_insert_lookup(self, env):
        _c, _r, runner, tree = env
        runner.run(tree.insert(10, 100))
        assert runner.run(tree.lookup(10)) == [100]
        assert runner.run(tree.lookup(11)) == []

    def test_duplicate_entry_returns_false(self, env):
        _c, _r, runner, tree = env
        assert runner.run(tree.insert(10, 100)) is True
        assert runner.run(tree.insert(10, 100)) is False

    def test_non_unique_keys_accumulate(self, env):
        _c, _r, runner, tree = env
        for rid in (3, 1, 2):
            runner.run(tree.insert("key", rid))
        assert runner.run(tree.lookup("key")) == [1, 2, 3]

    def test_unique_insert_rejects_same_key(self, env):
        _c, _r, runner, tree = env
        runner.run(tree.insert(5, 1, unique=True))
        with pytest.raises(DuplicateKey):
            runner.run(tree.insert(5, 2, unique=True))

    def test_delete(self, env):
        _c, _r, runner, tree = env
        runner.run(tree.insert(1, 10))
        assert runner.run(tree.delete(1, 10)) is True
        assert runner.run(tree.delete(1, 10)) is False
        assert runner.run(tree.lookup(1)) == []

    def test_splits_preserve_order(self, env):
        _c, _r, runner, tree = env
        keys = list(range(200))
        random.Random(1).shuffle(keys)
        for key in keys:
            runner.run(tree.insert(key, key * 2))
        entries = runner.run(tree.all_entries())
        assert entries == [(key, key * 2) for key in range(200)]

    def test_range_entries(self, env):
        _c, _r, runner, tree = env
        for key in range(100):
            runner.run(tree.insert(key, key))
        got = runner.run(tree.range_entries((20,), (30,)))
        assert got == [(key, key) for key in range(20, 30)]

    def test_range_with_limit(self, env):
        _c, _r, runner, tree = env
        for key in range(50):
            runner.run(tree.insert(key, key))
        got = runner.run(tree.range_entries((0,), None, limit=7))
        assert len(got) == 7

    def test_lookup_on_missing_index_raises(self, env):
        _c, _r, runner, _tree = env
        ghost = DistributedBTree(index_id=999)
        with pytest.raises(InvalidState):
            runner.run(ghost.lookup(1))

    def test_create_is_idempotent_under_races(self, env):
        _c, _r, runner, tree = env
        runner.run(tree.insert(1, 1))
        other = DistributedBTree(index_id=tree.index_id, max_entries=6)
        runner.run(other.create())  # loses the conditional writes
        assert runner.run(other.lookup(1)) == [1]


class TestCrossHandleVisibility:
    def test_second_pn_sees_inserts(self, env):
        _c, _r, runner, tree = env
        for key in range(100):
            runner.run(tree.insert(key, key))
        other = fresh_handle(env)
        assert runner.run(other.lookup(42)) == [42]

    def test_stale_cache_follows_splits(self, env):
        """A PN whose cached inner nodes predate splits still finds keys
        (B-link move-right), and refreshes its cache."""
        _c, _r, runner, tree = env
        for key in range(0, 40):
            runner.run(tree.insert(key, key))
        other = fresh_handle(env)
        runner.run(other.lookup(20))  # warm other's cache
        # main handle splits leaves to the right of 20 heavily
        for key in range(40, 160):
            runner.run(tree.insert(key, key))
        for key in (45, 99, 159):
            assert runner.run(other.lookup(key)) == [key]

    def test_stale_root_cache_after_tree_grows(self, env):
        _c, _r, runner, tree = env
        runner.run(tree.insert(1, 1))
        other = fresh_handle(env)
        runner.run(other.lookup(1))  # caches the 1-level root
        for key in range(2, 300):
            runner.run(tree.insert(key, key))  # root grows several levels
        assert runner.run(other.lookup(250)) == [250]

    def test_lookup_many_batches(self, env):
        _c, _r, runner, tree = env
        for key in range(100):
            runner.run(tree.insert(key, key))
        runner.run(tree.lookup(0))  # warm cache
        result = runner.run(tree.lookup_many(list(range(0, 100, 7))))
        for key in range(0, 100, 7):
            assert result[key] == [key]

    def test_lookup_many_cold_cache_falls_back(self, env):
        _c, _r, runner, tree = env
        for key in range(50):
            runner.run(tree.insert(key, key))
        other = fresh_handle(env)
        result = runner.run(other.lookup_many([1, 25, 49]))
        assert result == {1: [1], 25: [25], 49: [49]}

    def test_lookup_many_after_concurrent_splits(self, env):
        _c, _r, runner, tree = env
        for key in range(0, 200, 2):
            runner.run(tree.insert(key, key))
        other = fresh_handle(env)
        runner.run(other.lookup(0))  # warm cache
        for key in range(1, 200, 2):  # splits under other's feet
            runner.run(tree.insert(key, key))
        result = runner.run(other.lookup_many(list(range(0, 200, 13))))
        for key in range(0, 200, 13):
            assert result[key] == [key]

    def test_cache_disabled_mode(self, env):
        _c, _r, runner, tree = env
        uncached = fresh_handle(env, cache_inner_nodes=False)
        for key in range(60):
            runner.run(tree.insert(key, key))
        assert runner.run(uncached.lookup(30)) == [30]
        assert uncached.cache.hits == 0


class TestConcurrentInterleavings:
    def test_interleaved_inserts_from_two_pns(self, env):
        _c, router, runner, tree = env
        other = fresh_handle(env)
        gens = [tree.insert(i, 1000 + i) for i in range(40)]
        gens += [other.insert(i + 40, 2000 + i) for i in range(40)]
        random.Random(3).shuffle(gens)
        _results, errors = interleave(router, gens)
        assert not any(errors)
        entries = runner.run(tree.all_entries())
        assert len(entries) == 80
        assert entries == sorted(entries)

    def test_interleaved_insert_delete(self, env):
        _c, router, runner, tree = env
        for key in range(30):
            runner.run(tree.insert(key, key))
        other = fresh_handle(env)
        gens = [tree.delete(key, key) for key in range(0, 30, 2)]
        gens += [other.insert(key, key) for key in range(30, 60)]
        _results, errors = interleave(router, gens)
        assert not any(errors)
        entries = runner.run(tree.all_entries())
        expected = sorted(
            [(key, key) for key in range(1, 30, 2)]
            + [(key, key) for key in range(30, 60)]
        )
        assert entries == expected

    def test_interleaved_unique_inserts_one_winner(self, env):
        _c, router, runner, tree = env
        other = fresh_handle(env)
        gens = [tree.insert(7, 1, unique=True), other.insert(7, 2, unique=True)]
        _results, errors = interleave(router, gens)
        dup_errors = [e for e in errors if isinstance(e, DuplicateKey)]
        rids = runner.run(tree.lookup(7))
        assert len(rids) == 1
        assert len(dup_errors) == 1


class TestBulkBuild:
    def test_bulk_build_equals_incremental(self, env):
        _c, _r, runner, _tree = env
        entries = sorted((key, key * 3) for key in range(500))
        bulk = DistributedBTree(index_id=50, max_entries=16)
        runner.run(bulk.bulk_build(entries))
        assert runner.run(bulk.all_entries()) == entries
        for key in (0, 123, 499):
            assert runner.run(bulk.lookup(key)) == [key * 3]

    def test_bulk_build_empty(self, env):
        _c, _r, runner, _tree = env
        bulk = DistributedBTree(index_id=51, max_entries=8)
        runner.run(bulk.bulk_build([]))
        assert runner.run(bulk.all_entries()) == []
        runner.run(bulk.insert(1, 1))
        assert runner.run(bulk.lookup(1)) == [1]

    def test_bulk_build_rejects_unsorted(self, env):
        _c, _r, runner, _tree = env
        bulk = DistributedBTree(index_id=52)
        with pytest.raises(InvalidState):
            runner.run(bulk.bulk_build([(2, 2), (1, 1)]))

    def test_inserts_after_bulk_build(self, env):
        _c, _r, runner, _tree = env
        entries = sorted((key, key) for key in range(0, 100, 2))
        bulk = DistributedBTree(index_id=53, max_entries=8)
        runner.run(bulk.bulk_build(entries))
        for key in range(1, 100, 2):
            runner.run(bulk.insert(key, key))
        assert runner.run(bulk.all_entries()) == sorted(
            (key, key) for key in range(100)
        )


# -- property-based model checking ------------------------------------------------


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=120,
    )
)
def test_btree_matches_set_model(operations):
    """Random insert/delete sequences agree with a sorted-set model."""
    cluster = StorageCluster(n_nodes=2)
    runner = DirectRunner(Router(cluster))
    tree = DistributedBTree(index_id=1, max_entries=4)
    runner.run(tree.create())
    model = set()
    for action, key, rid in operations:
        if action == "insert":
            runner.run(tree.insert(key, rid))
            model.add((key, rid))
        else:
            runner.run(tree.delete(key, rid))
            model.discard((key, rid))
    assert runner.run(tree.all_entries()) == sorted(model)
    for key in range(41):
        expected = sorted(r for k, r in model if k == key)
        assert runner.run(tree.lookup(key)) == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.lists(st.integers(min_value=0, max_value=1000), max_size=150),
    low=st.integers(min_value=0, max_value=1000),
    span=st.integers(min_value=0, max_value=500),
)
def test_range_scan_matches_model(keys, low, span):
    cluster = StorageCluster(n_nodes=2)
    runner = DirectRunner(Router(cluster))
    tree = DistributedBTree(index_id=1, max_entries=4)
    runner.run(tree.create())
    model = set()
    for rid, key in enumerate(keys):
        runner.run(tree.insert(key, rid))
        model.add((key, rid))
    high = low + span
    got = runner.run(tree.range_entries((low,), (high,)))
    expected = sorted(entry for entry in model if low <= entry[0] < high)
    assert got == expected
