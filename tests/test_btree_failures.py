"""Failure injection for the latch-free B+tree.

The point of a latch-free index (Section 5.3) is that a processing node
can die at *any* instant without leaving the tree in a state that blocks
or corrupts other nodes: every intermediate state either is invisible
(fresh nodes not yet linked) or remains navigable through sibling links.
These tests crash a writer's coroutine at chosen request boundaries --
exactly what a PN crash does -- via the dispatch pipeline's
:class:`~repro.dispatch.CrashPoint` interceptor, and verify other
handles keep working.
"""

import pytest

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.dispatch import CrashPoint, InjectedCrash
from repro.index.btree import DistributedBTree
from repro.store.cluster import StorageCluster


@pytest.fixture
def env():
    cluster = StorageCluster(n_nodes=2)
    runner = DirectRunner(Router(cluster))
    tree = DistributedBTree(index_id=1, max_entries=4)
    runner.run(tree.create())
    return cluster, runner, tree


def run_until_crash(cluster, generator, crash_predicate):
    """Drive a coroutine through a pipeline that crashes it right after
    the first request satisfying ``crash_predicate`` has been executed
    (simulated PN crash).  Returns True if the crash fired."""
    crash = CrashPoint(crash_predicate)
    router = Router(cluster, interceptors=[crash])
    try:
        effects.run_direct(generator, router)
    except InjectedCrash:
        pass
    return crash.fired


def fill_leaf(runner, tree, count=4):
    for key in range(count):
        runner.run(tree.insert(key, key))


class TestCrashMidSplit:
    def test_crash_after_right_node_created(self, env):
        """Crash between writing the new right sibling and CASing the
        left half: the right node is unreachable garbage; the tree is
        untouched and fully usable."""
        cluster, runner, tree = env
        fill_leaf(runner, tree)  # leaf now full (max_entries=4)

        def stop_after_right_put(request):
            return (
                isinstance(request, effects.Put)
                and request.space == "index"
                and not isinstance(request.key[1], str)  # a node, not root
            )

        crashed = run_until_crash(
            cluster, tree.insert(10, 10), stop_after_right_put
        )
        assert crashed, "the insert should have split"
        # Another PN's handle sees the original four keys, can insert, read.
        other = DistributedBTree(index_id=1, max_entries=4)
        assert runner.run(other.all_entries()) == [(k, k) for k in range(4)]
        runner.run(other.insert(10, 10))
        assert runner.run(other.lookup(10)) == [10]

    def test_crash_after_left_cas_before_parent_update(self, env):
        """Crash with the split half-done (left CASed, separator not yet
        in the parent): keys stay reachable through the sibling link."""
        cluster, runner, tree = env
        # Build a two-level tree first so there is a parent to update.
        for key in range(0, 40, 2):
            runner.run(tree.insert(key, key))

        def stop_after_leaf_cas(request):
            return (
                isinstance(request, effects.PutIfVersion)
                and request.space == "index"
                and getattr(request.value, "is_leaf", False)
                and request.value.right_id is not None
            )

        # Insert odd keys until one triggers a leaf split, then crash.
        crashed = False
        key = 1
        while not crashed and key < 40:
            crashed = run_until_crash(
                cluster, tree.insert(key, key), stop_after_leaf_cas
            )
            key += 2
        assert crashed, "no split happened; widen the key range"

        inserted_odds = list(range(1, key, 2))
        other = DistributedBTree(index_id=1, max_entries=4)
        # Every key -- including those in the half-linked new leaf -- is
        # reachable (B-link move-right), and new inserts repair/extend.
        for probe in list(range(0, 40, 2)) + inserted_odds:
            assert runner.run(other.lookup(probe)) == [probe], probe
        runner.run(other.insert(999, 999))
        assert runner.run(other.lookup(999)) == [999]
        entries = runner.run(other.all_entries())
        assert entries == sorted(entries)

    def test_crash_during_root_growth(self, env):
        """Crash after the new root node is written but before the root
        pointer CAS: the old root remains valid."""
        cluster, runner, tree = env

        def stop_after_new_root_put(request):
            return (
                isinstance(request, effects.Put)
                and request.space == "index"
                and getattr(request.value, "children", None) is not None
            )

        crashed = False
        key = 0
        while not crashed and key < 100:
            crashed = run_until_crash(
                cluster, tree.insert(key, key), stop_after_new_root_put
            )
            key += 1
        assert crashed, "tree never tried to grow its root"

        other = DistributedBTree(index_id=1, max_entries=4)
        for probe in range(key - 1):  # all fully-inserted keys
            assert runner.run(other.lookup(probe)) == [probe]
        for extra in range(200, 260):
            runner.run(other.insert(extra, extra))
        entries = runner.run(other.all_entries())
        assert entries == sorted(entries)


class TestRepeatedCrashes:
    def test_many_crashed_writers_leave_consistent_tree(self, env):
        """A barrage of writers each crashing at a random request leaves
        the tree consistent for a final survivor."""
        import random

        cluster, runner, tree = env
        rng = random.Random(9)
        committed = set()
        for key in range(120):
            budget = rng.randint(1, 6)
            counter = {"n": 0}

            def stop_after_n(request, budget=budget, counter=counter):
                counter["n"] += 1
                return counter["n"] >= budget

            handle = DistributedBTree(index_id=1, max_entries=4)
            crashed = run_until_crash(
                cluster, handle.insert(key, key), stop_after_n
            )
            if not crashed:
                committed.add(key)
        survivor = DistributedBTree(index_id=1, max_entries=4)
        entries = runner.run(survivor.all_entries())
        assert entries == sorted(entries)
        present = {key for key, _rid in entries}
        # every fully-completed insert must be present
        assert committed <= present
        # and the survivor can still operate
        runner.run(survivor.insert(10_000, 1))
        assert runner.run(survivor.lookup(10_000)) == [1]
