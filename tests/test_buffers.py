"""Tests for the buffering strategies of Section 5.5."""

import pytest

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.core.buffers import (
    SharedBufferVersionSync,
    SharedRecordBuffer,
    TransactionBuffer,
    make_strategy,
)
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.core.record import VersionedRecord
from repro.core.snapshot import SnapshotDescriptor
from repro.core.spaces import DATA_SPACE, VSET_SPACE, data_key
from repro.store.cluster import StorageCluster

K1 = data_key(1, 1)
K2 = data_key(1, 2)
K11 = data_key(1, 11)


def run(router, generator):
    return effects.run_direct(generator, router)


@pytest.fixture
def store_env():
    cluster = StorageCluster(n_nodes=2)
    router = Router(cluster)
    cluster.execute(effects.Put(DATA_SPACE, K1, VersionedRecord.initial(0, ("a",))))
    cluster.execute(effects.Put(DATA_SPACE, K2, VersionedRecord.initial(0, ("b",))))
    return cluster, router


class TestMakeStrategy:
    def test_names(self):
        assert make_strategy("tb").name == "tb"
        assert make_strategy("sb").name == "sb"
        assert make_strategy("sbvs10").unit_size == 10
        assert make_strategy("sbvs1000").unit_size == 1000

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_strategy("nope")


class TestTransactionBuffer:
    def test_always_fetches(self, store_env):
        _cluster, router = store_env
        strategy = TransactionBuffer()
        snapshot = SnapshotDescriptor(10, 0)
        run(router, strategy.read_records(snapshot, [K1]))
        run(router, strategy.read_records(snapshot, [K1]))
        assert strategy.stats.fetches == 2
        assert strategy.stats.hits == 0


class TestSharedRecordBuffer:
    def test_hit_when_snapshot_subset(self, store_env):
        _cluster, router = store_env
        strategy = SharedRecordBuffer()
        strategy.observe_snapshot(SnapshotDescriptor(10, 0))
        first = run(router, strategy.read_records(SnapshotDescriptor(5, 0), [K1]))
        # A transaction with an *older* snapshot can reuse the entry.
        second = run(router, strategy.read_records(SnapshotDescriptor(3, 0), [K1]))
        assert strategy.stats.fetches == 1
        assert strategy.stats.hits == 1
        assert first[K1][0] is second[K1][0]

    def test_miss_when_transaction_too_recent(self, store_env):
        _cluster, router = store_env
        strategy = SharedRecordBuffer()
        strategy.observe_snapshot(SnapshotDescriptor(5, 0))
        run(router, strategy.read_records(SnapshotDescriptor(5, 0), [K1]))
        # A newer transaction: V_tx ⊄ B -> re-fetch.
        strategy.observe_snapshot(SnapshotDescriptor(9, 0))
        run(router, strategy.read_records(SnapshotDescriptor(9, 0), [K1]))
        assert strategy.stats.fetches == 2

    def test_remote_update_visible_after_refetch(self, store_env):
        """A record changed by a remote PN is re-fetched by newer
        transactions -- the consistency condition of Section 5.5.2."""
        cluster, router = store_env
        strategy = SharedRecordBuffer()
        strategy.observe_snapshot(SnapshotDescriptor(5, 0))
        run(router, strategy.read_records(SnapshotDescriptor(5, 0), [K1]))
        # remote PN writes version 7
        record, version = cluster.execute(effects.Get(DATA_SPACE, K1))
        from repro.core.record import Version

        cluster.execute(
            effects.Put(DATA_SPACE, K1, record.with_version(Version(7, ("new",))))
        )
        strategy.observe_snapshot(SnapshotDescriptor(8, 0))
        result = run(router, strategy.read_records(SnapshotDescriptor(8, 0), [K1]))
        assert result[K1][0].get(7).payload == ("new",)

    def test_write_through_on_apply(self, store_env):
        _cluster, router = store_env
        strategy = SharedRecordBuffer()
        strategy.observe_snapshot(SnapshotDescriptor(5, 0))
        record = VersionedRecord.initial(6, ("w",))
        run(router, strategy.note_applied(6, K1, record, 2))
        result = run(router, strategy.read_records(SnapshotDescriptor(4, 0).with_completed(6), [K1]))
        assert result[K1][0] is record
        assert strategy.stats.fetches == 0

    def test_lru_eviction(self, store_env):
        _cluster, router = store_env
        strategy = SharedRecordBuffer(capacity=1)
        snapshot = SnapshotDescriptor(5, 0)
        strategy.observe_snapshot(snapshot)
        run(router, strategy.read_records(snapshot, [K1]))
        run(router, strategy.read_records(snapshot, [K2]))  # evicts K1
        run(router, strategy.read_records(snapshot, [K1]))
        assert strategy.stats.fetches == 3

    def test_invalidate(self, store_env):
        _cluster, router = store_env
        strategy = SharedRecordBuffer()
        snapshot = SnapshotDescriptor(5, 0)
        strategy.observe_snapshot(snapshot)
        run(router, strategy.read_records(snapshot, [K1]))
        strategy.invalidate(K1)
        run(router, strategy.read_records(snapshot, [K1]))
        assert strategy.stats.fetches == 2


class TestSharedBufferVersionSync:
    def test_vset_check_validates_without_refetch(self, store_env):
        """Condition 2a: equal stored version set -> record not
        re-transferred (the bandwidth saving of Section 5.5.3)."""
        _cluster, router = store_env
        strategy = SharedBufferVersionSync(unit_size=10)
        strategy.observe_snapshot(SnapshotDescriptor(5, 0))
        run(router, strategy.read_records(SnapshotDescriptor(5, 0), [K1]))
        strategy.observe_snapshot(SnapshotDescriptor(9, 0))
        run(router, strategy.read_records(SnapshotDescriptor(9, 0), [K1]))
        assert strategy.stats.fetches == 1       # record moved once
        assert strategy.stats.vset_checks >= 1   # cheap check instead
        assert strategy.stats.vset_valid == 1

    def test_update_invalidates_other_pn_buffers(self, store_env):
        cluster, router = store_env
        pn_a = SharedBufferVersionSync(unit_size=10)
        pn_b = SharedBufferVersionSync(unit_size=10)
        for strategy in (pn_a, pn_b):
            strategy.observe_snapshot(SnapshotDescriptor(5, 0))
            run(router, strategy.read_records(SnapshotDescriptor(5, 0), [K1]))
        # PN A applies an update (touching the vset cell).
        new_record = VersionedRecord.initial(7, ("new",))
        cluster.execute(effects.Put(DATA_SPACE, K1, new_record))
        run(router, pn_a.note_applied(7, K1, new_record, 2))
        # PN B with a newer snapshot detects B' != B and re-fetches.
        pn_b.observe_snapshot(SnapshotDescriptor(9, 0))
        result = run(router, pn_b.read_records(SnapshotDescriptor(9, 0), [K1]))
        assert result[K1][0].get(7) is not None
        assert pn_b.stats.fetches == 2

    def test_cache_unit_groups_invalidation(self, store_env):
        """Updating one record of a cache unit invalidates the whole
        unit locally (records sharing the version-set cell)."""
        cluster, router = store_env
        # K1 (rid 1) and K2 (rid 2) share unit (1, 0) at unit_size 10.
        strategy = SharedBufferVersionSync(unit_size=10)
        strategy.observe_snapshot(SnapshotDescriptor(5, 0))
        run(router, strategy.read_records(SnapshotDescriptor(5, 0), [K1, K2]))
        new_record = VersionedRecord.initial(7, ("upd",))
        run(router, strategy.note_applied(7, K1, new_record, 2))
        # K2's entry was dropped locally.
        assert K2 not in strategy._entries
        assert K1 in strategy._entries

    def test_unit_size_separates_records(self, store_env):
        cluster, router = store_env
        cluster.execute(
            effects.Put(DATA_SPACE, K11, VersionedRecord.initial(0, ("c",)))
        )
        strategy = SharedBufferVersionSync(unit_size=10)
        strategy.observe_snapshot(SnapshotDescriptor(5, 0))
        # rid 1 -> unit 0; rid 11 -> unit 1.
        run(router, strategy.read_records(SnapshotDescriptor(5, 0), [K1, K11]))
        run(router, strategy.note_applied(7, K1, VersionedRecord.initial(7, ("u",)), 2))
        assert K11 in strategy._entries  # different unit: untouched

    def test_vset_cell_written_to_store(self, store_env):
        cluster, router = store_env
        strategy = SharedBufferVersionSync(unit_size=10)
        strategy.observe_snapshot(SnapshotDescriptor(5, 0))
        run(router, strategy.note_applied(7, K1, VersionedRecord.initial(7, ("u",)), 2))
        value, version = cluster.execute(effects.Get(VSET_SPACE, (1, 0)))
        assert value is not None and version == 1
        assert value.contains(7)


class TestEndToEndWithStrategies:
    @pytest.mark.parametrize("name", ["tb", "sb", "sbvs10", "sbvs1000"])
    def test_transactions_correct_under_each_strategy(self, name):
        cluster = StorageCluster(n_nodes=2)
        cm = CommitManager(0, cluster.execute)
        pn = ProcessingNode(0, buffers=make_strategy(name))
        runner = DirectRunner(Router(cluster, cm, pn_id=0))

        def writer(txn):
            txn.insert(K1, (0,))
            return None
            yield

        runner.run(pn.run_transaction(writer))

        def bump(txn):
            value = yield from txn.read(K1)
            yield from txn.update(K1, (value[0] + 1,))

        for _ in range(20):
            runner.run(pn.run_transaction(bump))

        def check(txn):
            return (yield from txn.read(K1))

        value, _ = runner.run(pn.run_transaction(check))
        assert value == (20,)

    @pytest.mark.parametrize("name", ["sb", "sbvs10"])
    def test_cross_pn_consistency(self, name):
        """Two PNs with shared buffers never serve stale data to newer
        transactions."""
        cluster = StorageCluster(n_nodes=2)
        cm = CommitManager(0, cluster.execute)
        pn_a = ProcessingNode(0, buffers=make_strategy(name))
        pn_b = ProcessingNode(1, buffers=make_strategy(name))
        runner_a = DirectRunner(Router(cluster, cm, pn_id=0))
        runner_b = DirectRunner(Router(cluster, cm, pn_id=1))

        def init(txn):
            txn.insert(K1, (0,))
            return None
            yield

        runner_a.run(pn_a.run_transaction(init))

        def bump(txn):
            value = yield from txn.read(K1)
            yield from txn.update(K1, (value[0] + 1,))

        def read(txn):
            return (yield from txn.read(K1))

        for expected in range(1, 11):
            # alternate writers; the *other* PN must see the new value
            writer_pn, writer_runner = (
                (pn_a, runner_a) if expected % 2 else (pn_b, runner_b)
            )
            reader_pn, reader_runner = (
                (pn_b, runner_b) if expected % 2 else (pn_a, runner_a)
            )
            writer_runner.run(writer_pn.run_transaction(bump))
            value, _ = reader_runner.run(reader_pn.run_transaction(read))
            assert value == (expected,)
