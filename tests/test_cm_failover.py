"""Tests for commit-manager failure and replacement (Section 4.4.3),
plus transient-storage-error handling: retries live in the dispatch
pipeline's :class:`~repro.dispatch.RetryPolicy`, not in ad-hoc loops
inside the protocol code."""

import pytest

from repro.api import Database
from repro.api.runner import DirectRunner, Router
from repro.core.processing_node import ProcessingNode
from repro.dispatch import FaultInjector, FaultRule, RetryPolicy
from repro.errors import InvalidState, NodeUnavailable, TransactionAborted


class TestCommitManagerFailover:
    def test_replacement_serves_fresh_tids(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 1)")
        old_top = db.commit_managers[0].last_assigned_tid
        db.crash_commit_manager(0)
        session.execute("UPDATE t SET v = 2 WHERE id = 1")
        assert db.commit_managers[0].last_assigned_tid > old_top

    def test_data_visible_after_failover(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        db.crash_commit_manager(0)
        # New transactions through the replacement see committed data.
        rows = session.query("SELECT SUM(v) AS s FROM t")
        assert rows == [{"s": 30}]

    def test_refuses_with_active_transactions(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(InvalidState):
            db.crash_commit_manager(0)
        session.execute("ROLLBACK")
        db.crash_commit_manager(0)  # now allowed

    def test_sessions_rewired_to_replacement(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        replacement = db.crash_commit_manager(0)
        assert session.runner.router.commit_manager is replacement

    def test_conflict_detection_still_works_after_failover(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 0)")
        db.crash_commit_manager(0)
        a, b = db.session(), db.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE id = 1")
        b.execute("UPDATE t SET v = 2 WHERE id = 1")
        a.execute("COMMIT")
        with pytest.raises(TransactionAborted):
            b.execute("COMMIT")

    def test_multi_manager_failover_uses_peer_state(self):
        db = Database(commit_managers=2)
        a = db.session()  # CM 0
        b = db.session()  # CM 1
        a.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        b.refresh_catalog()
        a.execute("INSERT INTO t VALUES (1, 1)")
        db.sync_commit_managers()
        replacement = db.crash_commit_manager(0)
        db.sync_commit_managers()
        # Transactions through both managers still work and agree.
        a.execute("UPDATE t SET v = 5 WHERE id = 1")
        db.sync_commit_managers()
        assert b.query("SELECT v FROM t WHERE id = 1") == [{"v": 5}]

    def test_failover_with_drained_peers_advances_base(self):
        db = Database(commit_managers=2)
        a = db.session()
        a.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(10):
            a.execute("INSERT INTO t VALUES (?)", [i])
        replacement = db.crash_commit_manager(0)
        assert replacement.completed.base >= 10


class TestTransientStorageErrors:
    """Transient ``NodeUnavailable`` from the store is absorbed by the
    centralized :class:`RetryPolicy` interceptor; the protocol coroutines
    never see it and the transactions commit normally."""

    def _flaky_runner(self, db, error_rate=0.2, max_attempts=8, seed=5):
        retry = RetryPolicy(max_attempts=max_attempts, backoff_us=10.0)
        # Commit applies its write set via Batch; reads hit "data" directly.
        fault = FaultInjector(seed=seed, rules=[
            FaultRule(op="Batch", error_rate=error_rate),
            FaultRule(space="data", error_rate=error_rate),
        ])
        router = Router(
            db.cluster, db.commit_managers[0], pn_id=42,
            interceptors=[retry, fault],
        )
        return DirectRunner(router), retry, fault

    def test_retry_policy_masks_flaky_store(self):
        db = Database()
        pn = ProcessingNode(42)
        runner, retry, fault = self._flaky_runner(db)
        for key in range(40):
            txn = runner.run(pn.begin())
            txn.insert(("t", key), (key,))
            runner.run(txn.commit())
        assert fault.injected_errors > 0, "the fault never fired"
        assert retry.retries == fault.injected_errors
        # Every write survived the flakiness.
        check = runner.run(pn.begin())
        for key in range(40):
            assert runner.run(check.read(("t", key))) == (key,)

    def test_without_retry_the_error_aborts_the_transaction(self):
        db = Database()
        pn = ProcessingNode(42)
        fault = FaultInjector(seed=5, rules=[
            FaultRule(op="Batch", error_rate=1.0),
        ])
        runner = DirectRunner(
            Router(db.cluster, db.commit_managers[0], pn_id=42,
                   interceptors=[fault])
        )
        txn = runner.run(pn.begin())
        txn.insert(("t", 0), (0,))
        with pytest.raises((NodeUnavailable, TransactionAborted)):
            runner.run(txn.commit())
