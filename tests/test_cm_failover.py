"""Tests for commit-manager failure and replacement (Section 4.4.3)."""

import pytest

from repro.api import Database
from repro.errors import InvalidState, TransactionAborted


class TestCommitManagerFailover:
    def test_replacement_serves_fresh_tids(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 1)")
        old_top = db.commit_managers[0].last_assigned_tid
        db.crash_commit_manager(0)
        session.execute("UPDATE t SET v = 2 WHERE id = 1")
        assert db.commit_managers[0].last_assigned_tid > old_top

    def test_data_visible_after_failover(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        db.crash_commit_manager(0)
        # New transactions through the replacement see committed data.
        rows = session.query("SELECT SUM(v) AS s FROM t")
        assert rows == [{"s": 30}]

    def test_refuses_with_active_transactions(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(InvalidState):
            db.crash_commit_manager(0)
        session.execute("ROLLBACK")
        db.crash_commit_manager(0)  # now allowed

    def test_sessions_rewired_to_replacement(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        replacement = db.crash_commit_manager(0)
        assert session.runner.router.commit_manager is replacement

    def test_conflict_detection_still_works_after_failover(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 0)")
        db.crash_commit_manager(0)
        a, b = db.session(), db.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE id = 1")
        b.execute("UPDATE t SET v = 2 WHERE id = 1")
        a.execute("COMMIT")
        with pytest.raises(TransactionAborted):
            b.execute("COMMIT")

    def test_multi_manager_failover_uses_peer_state(self):
        db = Database(commit_managers=2)
        a = db.session()  # CM 0
        b = db.session()  # CM 1
        a.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        b.refresh_catalog()
        a.execute("INSERT INTO t VALUES (1, 1)")
        db.sync_commit_managers()
        replacement = db.crash_commit_manager(0)
        db.sync_commit_managers()
        # Transactions through both managers still work and agree.
        a.execute("UPDATE t SET v = 5 WHERE id = 1")
        db.sync_commit_managers()
        assert b.query("SELECT v FROM t WHERE id = 1") == [{"v": 5}]

    def test_failover_with_drained_peers_advances_base(self):
        db = Database(commit_managers=2)
        a = db.session()
        a.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(10):
            a.execute("INSERT INTO t VALUES (?)", [i])
        replacement = db.crash_commit_manager(0)
        assert replacement.completed.base >= 10
