"""Tests for commit-manager failure and replacement (Section 4.4.3),
plus transient-storage-error handling: retries live in the dispatch
pipeline's :class:`~repro.dispatch.RetryPolicy`, not in ad-hoc loops
inside the protocol code."""

import pytest

from repro.api import Database
from repro.api.runner import DirectRunner, Router
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.dispatch import FaultInjector, FaultRule, RetryPolicy
from repro.errors import InvalidState, NodeUnavailable, TransactionAborted
from repro.store.cluster import StorageCluster


class TestCommitManagerFailover:
    def test_replacement_serves_fresh_tids(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 1)")
        old_top = db.commit_managers[0].last_assigned_tid
        db.crash_commit_manager(0)
        session.execute("UPDATE t SET v = 2 WHERE id = 1")
        assert db.commit_managers[0].last_assigned_tid > old_top

    def test_data_visible_after_failover(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        db.crash_commit_manager(0)
        # New transactions through the replacement see committed data.
        rows = session.query("SELECT SUM(v) AS s FROM t")
        assert rows == [{"s": 30}]

    def test_refuses_with_active_transactions(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(InvalidState):
            db.crash_commit_manager(0)
        session.execute("ROLLBACK")
        db.crash_commit_manager(0)  # now allowed

    def test_sessions_rewired_to_replacement(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        replacement = db.crash_commit_manager(0)
        assert session.runner.router.commit_manager is replacement

    def test_conflict_detection_still_works_after_failover(self):
        db = Database()
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 0)")
        db.crash_commit_manager(0)
        a, b = db.session(), db.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("UPDATE t SET v = 1 WHERE id = 1")
        b.execute("UPDATE t SET v = 2 WHERE id = 1")
        a.execute("COMMIT")
        with pytest.raises(TransactionAborted):
            b.execute("COMMIT")

    def test_multi_manager_failover_uses_peer_state(self):
        db = Database(commit_managers=2)
        a = db.session()  # CM 0
        b = db.session()  # CM 1
        a.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        b.refresh_catalog()
        a.execute("INSERT INTO t VALUES (1, 1)")
        db.sync_commit_managers()
        replacement = db.crash_commit_manager(0)
        db.sync_commit_managers()
        # Transactions through both managers still work and agree.
        a.execute("UPDATE t SET v = 5 WHERE id = 1")
        db.sync_commit_managers()
        assert b.query("SELECT v FROM t WHERE id = 1") == [{"v": 5}]

    def test_failover_with_drained_peers_advances_base(self):
        db = Database(commit_managers=2)
        a = db.session()
        a.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(10):
            a.execute("INSERT INTO t VALUES (?)", [i])
        replacement = db.crash_commit_manager(0)
        assert replacement.completed.base >= 10


class TestInterleavedRecovery:
    """``CommitManager.recover`` with the interleaved tid scheme, and
    ``absorb_peers`` interacting with stripe retirement."""

    def _pair(self):
        cluster = StorageCluster(n_nodes=2, replication_factor=1)
        cm0 = CommitManager(0, cluster.execute, interleaved=True,
                            n_managers=2)
        cm1 = CommitManager(1, cluster.execute, interleaved=True,
                            n_managers=2)
        return cluster, cm0, cm1

    def test_absorb_peers_after_stripe_retirement_advances_base(self):
        cluster, cm0, cm1 = self._pair()
        # CM 1 is busy: assigns and completes ten tids (2, 4, ..., 20).
        for _ in range(10):
            start = cm1.start()
            cm1.set_committed(start.tid)
        cm1.publish_state()
        # Idle CM 0 syncs: absorbs CM 1's view, then retires its own
        # unassigned stripe tids the peer raced past (1, 3, ..., 19).
        cm0.sync([0, 1])
        assert cm0.completed.base >= 19
        # Retired tids are skipped by assignment, never reused.
        assert cm0.start().tid == 21

    def test_recover_preserves_stripe_discipline(self):
        """A recovered interleaved manager must not reassign any tid its
        crashed predecessor may have handed out (seed bug: recover()
        dropped interleaved/n_managers and restarted the stripe at 1)."""
        cluster, cm0, cm1 = self._pair()
        assigned = [cm0.start().tid for _ in range(5)]  # 1, 3, 5, 7, 9
        for tid in assigned:
            cm0.set_committed(tid)
        cm1.start()  # peer holds tid 2
        cm0.publish_state()
        cm1.publish_state()
        replacement = CommitManager.recover(
            0, cluster.execute, peer_ids=[1],
            interleaved=True, n_managers=2,
        )
        assert replacement.interleaved
        assert replacement.n_managers == 2
        fresh = replacement.start().tid
        assert fresh % 2 == 1  # still CM 0's residue class
        assert fresh > max(assigned)

    def test_recover_skips_past_peer_horizon(self):
        """Even tids the *predecessor* never assigned are skipped when a
        synced peer already raced past them: the predecessor might have
        assigned them between its last publication and the crash."""
        cluster, cm0, cm1 = self._pair()
        cm0.publish_state()  # publishes last_assigned_tid == 0
        for _ in range(10):
            start = cm1.start()
            cm1.set_committed(start.tid)
        cm1.publish_state()
        replacement = CommitManager.recover(
            0, cluster.execute, peer_ids=[1],
            interleaved=True, n_managers=2,
        )
        # highest known tid is 20 (from the peer): stripe resumes above.
        assert replacement.start().tid == 21
        # The skipped stripe tids were marked completed, so the global
        # base can advance past them once the peer's tids complete.
        assert replacement.completed_view().contains(19)

    def test_embedded_interleaved_failover_end_to_end(self):
        db = Database(commit_managers=2, interleaved_tids=True)
        a = db.session()  # CM 0
        a.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(5):
            a.execute("INSERT INTO t VALUES (?, ?)", [i, i])
        high = db.commit_managers[0].last_assigned_tid
        db.sync_commit_managers()
        replacement = db.crash_commit_manager(0)
        assert replacement.interleaved
        a.execute("UPDATE t SET v = 99 WHERE id = 0")
        assert replacement.last_assigned_tid > high
        assert replacement.last_assigned_tid % 2 == 1
        assert a.query("SELECT v FROM t WHERE id = 0") == [{"v": 99}]


class TestValidatorFailover:
    """The WSI/SSI validator across commit-manager replacement."""

    def test_single_manager_failover_replaces_the_validator(self):
        db = Database(isolation="wsi")
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 1)")
        lost = db.validator
        replacement = db.crash_commit_manager(0)
        # The only holder crashed: the deployment gets a fresh validator
        # with a recovery horizon, not the lost window.
        assert db.validator is not lost
        assert replacement.validator is db.validator
        assert replacement.isolation_name == "wsi"
        assert db.validator._validation_horizon > 0
        # Post-crash transactions start above the horizon and validate.
        before = replacement.validations
        session.execute("UPDATE t SET v = 2 WHERE id = 1")
        assert replacement.validations > before
        assert session.query("SELECT v FROM t WHERE id = 1") == [{"v": 2}]

    def test_multi_manager_failover_keeps_the_shared_validator(self):
        db = Database(isolation="ssi", commit_managers=2)
        shared = db.validator
        session = db.session()  # CM 0
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 1)")
        db.sync_commit_managers()
        replacement = db.crash_commit_manager(0)
        # A live peer still holds the shared validation state.
        assert db.validator is shared
        assert replacement.validator is shared
        assert shared._validation_horizon == 0
        session.execute("UPDATE t SET v = 2 WHERE id = 1")
        assert session.query("SELECT v FROM t WHERE id = 1") == [{"v": 2}]

    def test_si_failover_keeps_validator_none(self):
        db = Database()
        db.session().execute("CREATE TABLE t (id INT PRIMARY KEY)")
        replacement = db.crash_commit_manager(0)
        assert db.validator is None
        assert replacement.validator is None
        assert replacement.isolation_name == "si"


class TestTransientStorageErrors:
    """Transient ``NodeUnavailable`` from the store is absorbed by the
    centralized :class:`RetryPolicy` interceptor; the protocol coroutines
    never see it and the transactions commit normally."""

    def _flaky_runner(self, db, error_rate=0.2, max_attempts=8, seed=5):
        retry = RetryPolicy(max_attempts=max_attempts, backoff_us=10.0)
        # Commit applies its write set via Batch; reads hit "data" directly.
        fault = FaultInjector(seed=seed, rules=[
            FaultRule(op="Batch", error_rate=error_rate),
            FaultRule(space="data", error_rate=error_rate),
        ])
        router = Router(
            db.cluster, db.commit_managers[0], pn_id=42,
            interceptors=[retry, fault],
        )
        return DirectRunner(router), retry, fault

    def test_retry_policy_masks_flaky_store(self):
        db = Database()
        pn = ProcessingNode(42)
        runner, retry, fault = self._flaky_runner(db)
        for key in range(40):
            txn = runner.run(pn.begin())
            txn.insert(("t", key), (key,))
            runner.run(txn.commit())
        assert fault.injected_errors > 0, "the fault never fired"
        assert retry.retries == fault.injected_errors
        # Every write survived the flakiness.
        check = runner.run(pn.begin())
        for key in range(40):
            assert runner.run(check.read(("t", key))) == (key,)

    def test_without_retry_the_error_aborts_the_transaction(self):
        db = Database()
        pn = ProcessingNode(42)
        fault = FaultInjector(seed=5, rules=[
            FaultRule(op="Batch", error_rate=1.0),
        ])
        runner = DirectRunner(
            Router(db.cluster, db.commit_managers[0], pn_id=42,
                   interceptors=[fault])
        )
        txn = runner.run(pn.begin())
        txn.insert(("t", 0), (0,))
        with pytest.raises((NodeUnavailable, TransactionAborted)):
            runner.run(txn.commit())
