"""Tests for the commit manager (Section 4.2)."""

import pytest

from repro import effects
from repro.core.commit_manager import TID_COUNTER_KEY, CommitManager
from repro.errors import InvalidState
from repro.store.cluster import StorageCluster


@pytest.fixture
def store():
    return StorageCluster(n_nodes=2)


def manager(store, cm_id=0, tid_range=8):
    return CommitManager(cm_id, store.execute, tid_range_size=tid_range)


class TestTidAssignment:
    def test_tids_unique_and_increasing_within_manager(self, store):
        cm = manager(store)
        tids = [cm.start().tid for _ in range(25)]
        assert tids == sorted(tids)
        assert len(set(tids)) == 25

    def test_tids_unique_across_managers(self, store):
        a = manager(store, 0)
        b = manager(store, 1)
        tids = []
        for _ in range(20):
            tids.append(a.start().tid)
            tids.append(b.start().tid)
        assert len(set(tids)) == 40

    def test_ranges_come_from_shared_counter(self, store):
        cm = manager(store, tid_range=8)
        cm.start()
        value, _ = store.execute(effects.Get("meta", TID_COUNTER_KEY))
        assert value == 8
        for _ in range(8):
            cm.start()
        value, _ = store.execute(effects.Get("meta", TID_COUNTER_KEY))
        assert value == 16
        assert cm.range_refills == 2

    def test_refill_flag_reported(self, store):
        cm = manager(store, tid_range=4)
        starts = [cm.start() for _ in range(5)]
        assert starts[0].range_refilled
        assert not starts[1].range_refilled
        assert starts[4].range_refilled

    def test_invalid_range_size(self, store):
        with pytest.raises(InvalidState):
            CommitManager(0, store.execute, tid_range_size=0)


class TestSnapshots:
    def test_snapshot_excludes_running_transactions(self, store):
        cm = manager(store)
        first = cm.start()
        second = cm.start()
        assert not second.snapshot.contains(first.tid)

    def test_snapshot_includes_committed(self, store):
        cm = manager(store)
        first = cm.start()
        cm.set_committed(first.tid)
        second = cm.start()
        assert second.snapshot.contains(first.tid)

    def test_aborted_also_completes(self, store):
        """Aborted tids enter the snapshot (their writes were reverted
        first), keeping the base version advancing."""
        cm = manager(store)
        first = cm.start()
        cm.set_aborted(first.tid)
        second = cm.start()
        assert second.snapshot.contains(first.tid)
        assert cm.completed.base >= first.tid

    def test_own_tid_not_in_snapshot(self, store):
        cm = manager(store)
        start = cm.start()
        assert not start.snapshot.contains(start.tid)


class TestLav:
    def test_lav_without_active_equals_base(self, store):
        cm = manager(store)
        start = cm.start()
        cm.set_committed(start.tid)
        assert cm.lowest_active_version() == cm.completed.base

    def test_lav_is_min_active_base(self, store):
        cm = manager(store)
        old = cm.start()              # base 0
        cm.set_committed(cm.start().tid)
        fresh = cm.start()            # newer base
        assert cm.local_lav() == old.snapshot.base
        cm.set_committed(old.tid)
        cm.set_committed(fresh.tid)
        assert cm.local_lav() > old.snapshot.base

    def test_lav_considers_peers(self, store):
        a = manager(store, 0)
        b = manager(store, 1)
        stuck = b.start()  # b has an old active transaction
        for _ in range(10):
            a.set_committed(a.start().tid)
        b.publish_state()
        a.absorb_peers([1])
        assert a.lowest_active_version() <= stuck.snapshot.base


class TestMultiManagerSync:
    def test_views_converge_after_sync(self, store):
        a = manager(store, 0)
        b = manager(store, 1)
        for _ in range(5):
            a.set_committed(a.start().tid)
            b.set_committed(b.start().tid)
        a.sync([0, 1])
        b.sync([0, 1])
        a.sync([0, 1])
        assert a.completed.base == b.completed.base
        assert a.completed.snapshot() == b.completed.snapshot()

    def test_delayed_view_is_subset(self, store):
        """Before a sync round, a peer's view is only delayed -- it never
        contains a tid that did not complete."""
        a = manager(store, 0)
        b = manager(store, 1)
        committed = set()
        for _ in range(6):
            start = a.start()
            a.set_committed(start.tid)
            committed.add(start.tid)
        a.publish_state()
        b.absorb_peers([0])
        snapshot = b.start().snapshot
        for tid in snapshot.newly_completed():
            assert tid in committed

    def test_active_tids_of_pn(self, store):
        cm = manager(store)
        t1 = cm.start(pn_id=7)
        t2 = cm.start(pn_id=8)
        t3 = cm.start(pn_id=7)
        assert sorted(cm.active_tids_of(7)) == sorted([t1.tid, t3.tid])
        cm.set_committed(t1.tid)
        assert cm.active_tids_of(7) == [t3.tid]
        assert cm.active_tids_of(99) == []


class TestRecovery:
    def test_new_manager_gets_fresh_tids(self, store):
        a = manager(store, 0)
        used = {a.start().tid for _ in range(20)}
        # a crashes; a replacement starts with the same id
        replacement = CommitManager.recover(0, store.execute, peer_ids=[])
        fresh = {replacement.start().tid for _ in range(20)}
        assert used.isdisjoint(fresh)

    def test_recovered_state_from_publication(self, store):
        a = manager(store, 0)
        for _ in range(10):
            a.set_committed(a.start().tid)
        a.publish_state()
        replacement = CommitManager.recover(0, store.execute, peer_ids=[])
        assert replacement.completed.base == a.completed.base

    def test_recovery_from_peer_publications(self, store):
        a = manager(store, 0)
        b = manager(store, 1)
        for _ in range(5):
            b.set_committed(b.start().tid)
        b.publish_state()
        replacement = CommitManager.recover(0, store.execute, peer_ids=[1])
        assert replacement.completed.base >= 1
        assert replacement.highest_known_tid() >= 5
