"""Determinism regression: same seed, same config => identical metrics.

The simulation stack must be bit-for-bit reproducible: the event kernel
tie-breaks by insertion order, partitioning hashes are PYTHONHASHSEED-
independent, and all randomness flows from seeded ``random.Random``
instances.  Performance work on the hot paths is only admissible when it
preserves this property, so this test pins it with the metrics digest
(which covers every raw measurement: per-type commit/conflict/abort
counts, the measured window, and the full latency series).
"""

from repro.bench.config import TellConfig, TpccScale
from repro.bench.simcluster import run_tell_experiment


def _small_config(seed: int) -> TellConfig:
    return TellConfig(
        processing_nodes=2,
        storage_nodes=3,
        threads_per_pn=4,
        scale=TpccScale.small(2),
        duration_us=40_000.0,
        warmup_us=4_000.0,
        seed=seed,
    )


def test_same_seed_identical_digest():
    first = run_tell_experiment(_small_config(seed=7))
    second = run_tell_experiment(_small_config(seed=7))
    assert first.total_finished > 0
    assert first.digest() == second.digest()
    # The digest pins these derived figures too; assert a few directly so
    # a failure names the quantity that diverged.
    assert first.tpmc == second.tpmc
    assert first.abort_rate == second.abort_rate
    assert first.latency().p99_us == second.latency().p99_us


def test_different_seed_diverges():
    # Not a formal requirement, but if two different seeds collide the
    # digest is almost certainly not covering the measurements.
    first = run_tell_experiment(_small_config(seed=7))
    second = run_tell_experiment(_small_config(seed=8))
    assert first.digest() != second.digest()


def test_coalescing_off_matches_default():
    """The knob's off position is byte-identical to not having it."""
    baseline = run_tell_experiment(_small_config(seed=7))
    explicit = run_tell_experiment(_small_config(seed=7).with_(coalescing=False))
    assert baseline.digest() == explicit.digest()


def test_coalescing_on_is_deterministic():
    """Coalesced runs are fixed-seed reproducible across invocations.

    Group membership comes from the deterministic ready-FIFO order and
    the flush rides ``call_at(now, ...)``, so repeated runs must agree
    event for event even though the coalesced schedule differs from the
    uncoalesced one.
    """
    config = _small_config(seed=7).with_(coalescing=True)
    first = run_tell_experiment(config)
    second = run_tell_experiment(config)
    assert first.total_finished > 0
    assert first.digest() == second.digest()


def test_coalescing_on_deterministic_under_sanitizers(monkeypatch):
    """REPRO_SANITIZE=1 attaches the sanitizer interceptor chain; the
    coalesced schedule must stay reproducible (and clean) under it."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    config = _small_config(seed=7).with_(coalescing=True)
    first = run_tell_experiment(config)
    second = run_tell_experiment(config)
    assert first.digest() == second.digest()
