"""Unit tests for the repro.dispatch pipeline.

Covers the shared classification (kind_of), the direct Dispatcher, the
compose/interceptor protocol, the three production interceptors, the
run_direct error contract, and the Request __repr__ coverage that makes
traces readable.
"""

import json

import pytest

from repro import effects
from repro.api.runner import Router
from repro.dispatch import (
    KIND_BATCH,
    KIND_CM_ABORTED,
    KIND_CM_COMMITTED,
    KIND_CM_START,
    KIND_COMPUTE,
    KIND_SCAN,
    KIND_SLEEP,
    KIND_STORE,
    CrashPoint,
    DispatchContext,
    Dispatcher,
    FaultInjector,
    FaultRule,
    InjectedCrash,
    Interceptor,
    RequestTrace,
    RetryPolicy,
    TraceInterceptor,
    compose,
    drive_sync,
    kind_of,
)
from repro.dispatch.core import _KIND_BY_CLASS
from repro.errors import NodeUnavailable, TellError
from repro.store.cluster import StorageCluster


# ---------------------------------------------------------------------------
# classification
# ---------------------------------------------------------------------------


class TestKindOf:
    def test_exact_classes(self):
        assert kind_of(effects.Get("s", 1)) == KIND_STORE
        assert kind_of(effects.Put("s", 1, 2)) == KIND_STORE
        assert kind_of(effects.PutIfVersion("s", 1, 2, 0)) == KIND_STORE
        assert kind_of(effects.Delete("s", 1)) == KIND_STORE
        assert kind_of(effects.DeleteIfVersion("s", 1, 0)) == KIND_STORE
        assert kind_of(effects.Increment("s", 1)) == KIND_STORE
        assert kind_of(effects.Scan("s", None, None)) == KIND_SCAN
        assert kind_of(effects.Batch([])) == KIND_BATCH
        assert kind_of(effects.StartTransaction()) == KIND_CM_START
        assert kind_of(effects.ReportCommitted(1)) == KIND_CM_COMMITTED
        assert kind_of(effects.ReportAborted(1)) == KIND_CM_ABORTED
        assert kind_of(effects.Compute(1.0)) == KIND_COMPUTE
        assert kind_of(effects.Sleep(1.0)) == KIND_SLEEP

    def test_subclass_is_classified_and_cached(self):
        class FancyGet(effects.Get):
            __slots__ = ()

        try:
            request = FancyGet("s", 1)
            assert FancyGet not in _KIND_BY_CLASS
            assert kind_of(request) == KIND_STORE
            assert _KIND_BY_CLASS[FancyGet] == KIND_STORE  # cached now
            assert kind_of(request) == KIND_STORE
        finally:
            _KIND_BY_CLASS.pop(FancyGet, None)

    def test_scan_subclass_beats_store_fallback(self):
        class FancyScan(effects.Scan):
            __slots__ = ()

        try:
            assert kind_of(FancyScan("s", None, None)) == KIND_SCAN
        finally:
            _KIND_BY_CLASS.pop(FancyScan, None)

    def test_unroutable_raises_type_error(self):
        with pytest.raises(TypeError):
            kind_of("not a request")
        with pytest.raises(TypeError):
            kind_of(effects.Request())


# ---------------------------------------------------------------------------
# the direct dispatcher
# ---------------------------------------------------------------------------


class TestDispatcher:
    def test_store_requests_hit_the_cluster(self, cluster):
        dispatcher = Dispatcher(cluster)
        dispatcher.execute(effects.Put("data", "k", "v"))
        value, version = dispatcher.execute(effects.Get("data", "k"))
        assert value == "v" and version == 1
        results = dispatcher.execute(
            effects.Batch([effects.Get("data", "k"), effects.Get("data", "x")])
        )
        assert results[0][0] == "v" and results[1][0] is None

    def test_cm_requests_without_cm_raise(self, cluster):
        dispatcher = Dispatcher(cluster)
        with pytest.raises(RuntimeError):
            dispatcher.execute(effects.StartTransaction())

    def test_compute_and_sleep_are_noops(self, cluster):
        dispatcher = Dispatcher(cluster)
        assert dispatcher.execute(effects.Compute(5.0)) is None
        assert dispatcher.execute(effects.Sleep(5.0)) is None

    def test_router_is_a_dispatcher(self, cluster):
        assert isinstance(Router(cluster), Dispatcher)


# ---------------------------------------------------------------------------
# compose / interceptor protocol
# ---------------------------------------------------------------------------


class _Recorder(Interceptor):
    def __init__(self, name, log):
        self.name = name
        self.log = log

    def intercept(self, request, ctx, next):
        self.log.append(f"{self.name}:enter")
        result = yield from next(request)
        self.log.append(f"{self.name}:exit")
        return result


class TestCompose:
    def test_empty_chain_is_the_tail_itself(self):
        def tail(request):
            return iter(())

        ctx = DispatchContext()
        assert compose([], tail, ctx) is tail

    def test_chain_runs_outermost_first(self, cluster):
        log = []
        router = Router(
            cluster,
            interceptors=[_Recorder("outer", log), _Recorder("inner", log)],
        )
        router.execute(effects.Put("data", "k", "v"))
        assert log == ["outer:enter", "inner:enter", "inner:exit",
                       "outer:exit"]

    def test_drive_sync_resolves_yields_to_none(self):
        seen = []

        def gen():
            seen.append((yield "anything"))
            return 42

        assert drive_sync(gen()) == 42
        assert seen == [None]


# ---------------------------------------------------------------------------
# run_direct error contract (satellite regression tests)
# ---------------------------------------------------------------------------


class _FlakyCluster:
    """Stub cluster failing the first ``failures`` executes."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def execute(self, request):
        self.calls += 1
        if self.calls <= self.failures:
            raise NodeUnavailable("injected transient failure")
        return ("ok", self.calls)


class TestRunDirectErrors:
    def test_tell_error_is_thrown_into_the_coroutine(self, cluster):
        events = []

        def proto():
            try:
                yield effects.Get("data", "k")
                events.append("first-ok")
                yield _Boom("data", "k")  # the fault rule targets this class
            except TellError as exc:
                events.append(f"caught:{type(exc).__name__}")
                # protocol-level cleanup runs and can keep issuing requests
                yield effects.Put("data", "cleaned", True)
                return "aborted"
            return "committed"

        class _Boom(effects.Get):
            __slots__ = ()

        fault = FaultInjector(seed=1, rules=[
            FaultRule(op="_Boom", error_rate=1.0),
        ])
        router = Router(cluster, interceptors=[fault])
        outcome = effects.run_direct(proto(), router)
        assert outcome == "aborted"
        assert events == ["first-ok", "caught:NodeUnavailable"]
        assert cluster.execute(effects.Get("data", "cleaned"))[0] is True

    def test_uncaught_tell_error_propagates(self):
        def proto():
            yield effects.Get("data", "k")
            return "done"

        with pytest.raises(NodeUnavailable):
            effects.run_direct(proto(), Dispatcher(_FlakyCluster(99)))

    def test_non_tell_error_closes_the_coroutine(self, cluster):
        cleaned = []

        def proto():
            try:
                yield effects.Put("data", "k", "v")
                yield effects.Get("data", "k")
            finally:
                cleaned.append(True)
            return "done"

        crash = CrashPoint(lambda r: isinstance(r, effects.Get))
        router = Router(cluster, interceptors=[crash])
        with pytest.raises(InjectedCrash):
            effects.run_direct(proto(), router)
        # close() ran the coroutine's finally block instead of abandoning it
        assert cleaned == [True]
        # the crash struck *after* the matched request executed
        assert cluster.execute(effects.Get("data", "k"))[0] == "v"


# ---------------------------------------------------------------------------
# trace interceptor
# ---------------------------------------------------------------------------


class TestTraceInterceptor:
    def test_counts_bytes_and_round_trips(self, cluster):
        trace = RequestTrace()
        router = Router(cluster, interceptors=[TraceInterceptor(trace)])
        router.execute(effects.Put("data", "k", "v"))
        router.execute(effects.Get("data", "k"))
        router.execute(
            effects.Batch([effects.Get("data", "k"), effects.Get("data", "x")])
        )
        assert trace.round_trips == 3
        assert trace.total_requests == 3
        assert trace.per_class["Put"].count == 1
        assert trace.per_class["Get"].count == 1
        assert trace.per_class["Batch"].ops == 2
        assert trace.per_class["Put"].bytes > trace.per_class["Get"].bytes

    def test_errors_are_recorded_and_reraised(self, cluster):
        trace = RequestTrace()
        fault = FaultInjector(seed=3, rules=[
            FaultRule(op="Get", error_rate=1.0),
        ])
        # trace wraps fault: the trace sees the injected error
        router = Router(cluster, interceptors=[TraceInterceptor(trace), fault])
        with pytest.raises(NodeUnavailable):
            router.execute(effects.Get("data", "k"))
        assert trace.per_class["Get"].errors == 1
        assert trace.errors_by_type == {"NodeUnavailable": 1}
        assert trace.round_trips == 0

    def test_json_dump_schema(self, cluster):
        router = Router(cluster, interceptors=[TraceInterceptor()])
        router.execute(effects.Put("data", "k", "v"))
        payload = json.loads(
            router.interceptors[0].trace.dump_json()
        )
        assert payload["schema"] == "repro-dispatch-trace/1"
        assert payload["per_class"]["Put"]["count"] == 1
        assert "latency_histogram_log2_us" in payload["per_class"]["Put"]


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_transient_errors_are_retried(self):
        flaky = _FlakyCluster(failures=2)
        retry = RetryPolicy(max_attempts=3, backoff_us=10.0)
        dispatcher = Dispatcher(flaky, interceptors=[retry])
        assert dispatcher.execute(effects.Get("data", "k")) == ("ok", 3)
        assert retry.retries == 2

    def test_attempts_are_bounded(self):
        flaky = _FlakyCluster(failures=99)
        retry = RetryPolicy(max_attempts=3, backoff_us=0.0)
        dispatcher = Dispatcher(flaky, interceptors=[retry])
        with pytest.raises(NodeUnavailable):
            dispatcher.execute(effects.Get("data", "k"))
        assert flaky.calls == 3

    def test_retryable_filter_narrows(self):
        flaky = _FlakyCluster(failures=1)
        retry = RetryPolicy(
            max_attempts=3,
            retryable=lambda request, exc: isinstance(request, effects.Get),
        )
        dispatcher = Dispatcher(flaky, interceptors=[retry])
        with pytest.raises(NodeUnavailable):
            dispatcher.execute(effects.Put("data", "k", "v"))

    def test_non_retry_on_errors_pass_through(self, cluster):
        crash = CrashPoint(lambda r: True)
        retry = RetryPolicy(max_attempts=5)
        router = Router(cluster, interceptors=[retry, crash])
        with pytest.raises(InjectedCrash):
            router.execute(effects.Put("data", "k", "v"))
        assert retry.retries == 0


# ---------------------------------------------------------------------------
# fault injector
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def _inject_pattern(self, seed, n=200):
        cluster = StorageCluster(n_nodes=1)
        fault = FaultInjector(seed=seed, rules=[
            FaultRule(op="Get", space="data", error_rate=0.3),
        ])
        dispatcher = Dispatcher(cluster, interceptors=[fault])
        pattern = []
        for i in range(n):
            try:
                dispatcher.execute(effects.Get("data", i))
                pattern.append(0)
            except NodeUnavailable:
                pattern.append(1)
        return fault, pattern

    def test_same_seed_reproduces_the_same_faults(self):
        fault_a, pattern_a = self._inject_pattern(seed=7)
        fault_b, pattern_b = self._inject_pattern(seed=7)
        assert pattern_a == pattern_b
        assert fault_a.injected_errors == fault_b.injected_errors > 0

    def test_different_seeds_differ(self):
        _f, pattern_a = self._inject_pattern(seed=7)
        _g, pattern_b = self._inject_pattern(seed=8)
        assert pattern_a != pattern_b

    def test_rules_match_space_and_op(self, cluster):
        fault = FaultInjector(seed=1, rules=[
            FaultRule(op="Put", space="data", error_rate=1.0),
        ])
        dispatcher = Dispatcher(cluster, interceptors=[fault])
        # wrong op and wrong space sail through
        dispatcher.execute(effects.Get("data", "k"))
        dispatcher.execute(effects.Put("index", "k", "v"))
        with pytest.raises(NodeUnavailable):
            dispatcher.execute(effects.Put("data", "k", "v"))

    def test_custom_error_type(self, cluster):
        class Transient(TellError):
            pass

        fault = FaultInjector(seed=1, rules=[
            FaultRule(op="Get", error_rate=1.0, error_type=Transient),
        ])
        dispatcher = Dispatcher(cluster, interceptors=[fault])
        with pytest.raises(Transient):
            dispatcher.execute(effects.Get("data", "k"))

    def test_schedule_requires_a_simulator(self, cluster):
        from repro.dispatch import ScheduledFault, kill_storage_node

        fault = FaultInjector(
            seed=1,
            schedule=[ScheduledFault(10.0, kill_storage_node(0))],
        )
        with pytest.raises(ValueError):
            Dispatcher(cluster, interceptors=[fault])

    def test_retry_recovers_injected_transients(self, cluster):
        """Retry + fault injection compose: bounded retry absorbs a
        moderate transient error rate."""
        fault = FaultInjector(seed=5, rules=[
            FaultRule(op="Get", error_rate=0.25),
        ])
        retry = RetryPolicy(max_attempts=8, backoff_us=1.0)
        dispatcher = Dispatcher(
            StorageCluster(n_nodes=1), interceptors=[retry, fault]
        )
        for i in range(100):
            value, _version = dispatcher.execute(effects.Get("data", i))
            assert value is None
        assert retry.retries == fault.injected_errors > 0


# ---------------------------------------------------------------------------
# repr coverage (satellite)
# ---------------------------------------------------------------------------


class TestRequestReprs:
    REQUESTS = [
        (effects.Get("data", 1), "Get('data', 1)"),
        (effects.Put("data", 1, "v"), "Put('data', 1, 'v')"),
        (effects.PutIfVersion("data", 1, "v", 3),
         "PutIfVersion('data', 1, 'v', expected_version=3)"),
        (effects.Delete("data", 1), "Delete('data', 1)"),
        (effects.DeleteIfVersion("data", 1, 2),
         "DeleteIfVersion('data', 1, expected_version=2)"),
        (effects.Increment("data", 1, delta=5),
         "Increment('data', 1, delta=5)"),
        (effects.Scan("data", 1, 9, limit=4), "Scan('data', 1..9, limit=4)"),
        (effects.Batch([effects.Get("d", 1)]), "Batch(1 ops)"),
        (effects.StartTransaction(), "StartTransaction()"),
        (effects.ReportCommitted(7), "ReportCommitted(tid=7)"),
        (effects.ReportAborted(8), "ReportAborted(tid=8)"),
        (effects.ValidateCommit(9, [1, 2], [2], None),
         "ValidateCommit(tid=9, reads=2, writes=1)"),
        (effects.Compute(2.5), "Compute(2.5)"),
        (effects.Sleep(9.0), "Sleep(9.0)"),
    ]

    def test_every_request_class_has_a_useful_repr(self):
        for request, expected in self.REQUESTS:
            assert repr(request) == expected

    def test_all_public_request_classes_covered(self):
        covered = {type(r) for r, _ in self.REQUESTS}
        public = {
            cls for cls in vars(effects).values()
            if isinstance(cls, type)
            and issubclass(cls, effects.Request)
            and cls not in (effects.Request, effects.StoreRequest,
                            effects.CommitManagerRequest)
        }
        assert public <= covered
