"""End-to-end fault injection through the dispatch pipeline.

The paper's recovery claims (Section 4.4) say a shared-data deployment
survives storage-node failures: masters fail over to synchronously
replicated backups and the workload keeps committing.  These tests kill
one SN in the middle of a concurrent simulated TPC-C run (RF3) via a
:class:`~repro.dispatch.ScheduledFault` and then check the TPC-C
consistency conditions end-to-end -- plus that the whole faulty run is
deterministic for a fixed seed, which is what makes failure scenarios
debuggable at all.
"""

import pytest

from repro.api.runner import DirectRunner, Router
from repro.bench.config import TellConfig
from repro.bench.simcluster import SimulatedTell, run_tell_experiment
from repro.core.processing_node import ProcessingNode
from repro.dispatch import (
    FaultInjector,
    ScheduledFault,
    TraceInterceptor,
    kill_storage_node,
)
from repro.sql.table import IndexManager, Table
from repro.workloads.tpcc.params import TpccScale

KILL_AT_US = 60_000.0
KILLED_NODE = 1


def _config(seed=11):
    return TellConfig(
        processing_nodes=2,
        storage_nodes=3,
        replication_factor=3,
        threads_per_pn=8,
        scale=TpccScale.tiny(4),
        duration_us=120_000.0,
        warmup_us=0.0,
        seed=seed,
    )


def _run_with_kill(seed=11):
    fault = FaultInjector(seed=seed, schedule=[
        ScheduledFault(KILL_AT_US, kill_storage_node(KILLED_NODE),
                       label=f"kill-sn{KILLED_NODE}"),
    ])
    deployment = SimulatedTell(_config(seed), interceptors=[fault])
    deployment.load()
    metrics = deployment.run()
    return deployment, metrics, fault


@pytest.fixture(scope="module")
def after_faulty_run():
    deployment, metrics, fault = _run_with_kill()
    deployment.quiesce()
    pn = ProcessingNode(50)
    runner = DirectRunner(
        Router(deployment.cluster, deployment.commit_managers[0], pn_id=50)
    )
    return deployment, metrics, fault, pn, runner


def all_rows(after_faulty_run, table_name):
    deployment, _metrics, _fault, pn, runner = after_faulty_run
    txn = runner.run(pn.begin())
    table = Table(deployment.catalog.table(table_name), txn, IndexManager())
    rows = runner.run(table.scan())
    runner.run(txn.commit())
    schema = deployment.catalog.table(table_name)
    return [schema.row_to_dict(row) for _rid, row in rows]


class TestSnKillFailover:
    def test_fault_fired_and_node_is_dead(self, after_faulty_run):
        deployment, metrics, fault, _pn, _runner = after_faulty_run
        assert fault.fired_events == [f"kill-sn{KILLED_NODE}"]
        assert not deployment.cluster.nodes[KILLED_NODE].alive
        assert KILLED_NODE not in deployment.cluster.live_nodes()
        assert deployment.management.recoveries_completed == 1

    def test_workload_keeps_committing_after_the_kill(self, after_faulty_run):
        _deployment, metrics, _fault, _pn, _runner = after_faulty_run
        # Latencies are recorded at commit time; commits after the kill
        # prove the fail-over actually served traffic.
        post_kill_commits = sum(
            1 for values in metrics.latencies_us.values() for _ in values
        )
        assert metrics.total_committed > 100
        assert post_kill_commits == metrics.total_committed
        assert metrics.abort_rate < 0.9

    def test_every_partition_has_a_live_master(self, after_faulty_run):
        deployment, _metrics, _fault, _pn, _runner = after_faulty_run
        pmap = deployment.cluster.partition_map
        for pid in range(deployment.cluster.partitioner.n_partitions):
            master = pmap.master_of(pid)
            assert deployment.cluster.nodes[master].alive

    def test_consistency_district_next_o_id(self, after_faulty_run):
        districts = all_rows(after_faulty_run, "district")
        orders = all_rows(after_faulty_run, "orders")
        for district in districts:
            w, d = district["d_w_id"], district["d_id"]
            o_ids = [o["o_id"] for o in orders
                     if o["o_w_id"] == w and o["o_d_id"] == d]
            assert max(o_ids) == district["d_next_o_id"] - 1, (
                f"district ({w},{d}) lost or duplicated an order id "
                f"across the fail-over"
            )

    def test_consistency_order_ids_contiguous(self, after_faulty_run):
        orders = all_rows(after_faulty_run, "orders")
        per_district = {}
        for order in orders:
            per_district.setdefault(
                (order["o_w_id"], order["o_d_id"]), []
            ).append(order["o_id"])
        for key, ids in per_district.items():
            assert sorted(ids) == list(range(1, len(ids) + 1)), (
                f"district {key} has gaps/duplicates in order ids"
            )

    def test_consistency_orderline_counts(self, after_faulty_run):
        orders = all_rows(after_faulty_run, "orders")
        lines = all_rows(after_faulty_run, "orderline")
        expected = {}
        for order in orders:
            key = (order["o_w_id"], order["o_d_id"])
            expected[key] = expected.get(key, 0) + order["o_ol_cnt"]
        actual = {}
        for line in lines:
            key = (line["ol_w_id"], line["ol_d_id"])
            actual[key] = actual.get(key, 0) + 1
        assert actual == expected

    def test_consistency_warehouse_ytd(self, after_faulty_run):
        warehouses = all_rows(after_faulty_run, "warehouse")
        districts = all_rows(after_faulty_run, "district")
        for warehouse in warehouses:
            own = [d for d in districts if d["d_w_id"] == warehouse["w_id"]]
            payments_d = sum(d["d_ytd"] for d in own) - 30_000.0 * len(own)
            payments_w = warehouse["w_ytd"] - 300_000.0
            assert payments_w == pytest.approx(payments_d, abs=0.05), (
                f"warehouse {warehouse['w_id']}: lost payment updates"
            )

    def test_no_uncommitted_versions_remain(self, after_faulty_run):
        from repro import effects

        deployment, _metrics, _fault, _pn, _runner = after_faulty_run
        manager = deployment.commit_managers[0]
        rows = deployment.cluster.execute(effects.Scan("data", None, None))
        for _key, record, _version in rows:
            for version in record.versions:
                assert manager.completed.contains(version.tid), (
                    f"version {version.tid} never completed"
                )


class TestFaultDeterminism:
    def test_fixed_seed_reproduces_the_faulty_run(self):
        _d1, metrics_a, fault_a = _run_with_kill(seed=23)
        _d2, metrics_b, fault_b = _run_with_kill(seed=23)
        assert metrics_a.digest() == metrics_b.digest()
        assert fault_a.fired_events == fault_b.fired_events

    def test_the_kill_actually_changes_the_run(self):
        deployment = SimulatedTell(_config(seed=23))
        deployment.load()
        clean = deployment.run()
        _d, faulty, _f = _run_with_kill(seed=23)
        assert clean.digest() != faulty.digest()


class TestTraceInvariance:
    def test_trace_interceptor_is_behaviour_invariant(self):
        """A traced run commits the exact same transactions at the exact
        same simulated times as an untraced one -- the digest is the
        acceptance criterion for the whole pipeline refactor."""
        config = TellConfig(
            processing_nodes=2,
            storage_nodes=3,
            threads_per_pn=4,
            scale=TpccScale.tiny(2),
            duration_us=40_000.0,
            warmup_us=4_000.0,
            seed=7,
        )
        bare = run_tell_experiment(config)
        trace = TraceInterceptor()
        traced = run_tell_experiment(config, interceptors=[trace])
        assert bare.digest() == traced.digest()
        assert traced.request_trace is trace.trace
        assert trace.trace.total_requests > 1_000
        assert trace.trace.per_class["Compute"].count > 0
        assert trace.trace.per_class["Batch"].bytes > 0
        # simulated latency was measured, not wall-clock
        assert trace.trace.per_class["Get"].total_latency_us > 0.0
