"""Tests for live elasticity: topology, migration, admin API, autoscaler.

Covers the versioned-topology unit surface, the bounded-batch migration
protocol (including the no-leak guarantee after aborted migrations), the
``db.admin()`` cluster-administration API, the live simulated
double/halve cycle under the sanitizer suite at every isolation level,
fixed-seed determinism of migration schedules, mid-migration SN-kill
chaos, and the deterministic autoscaler policy.
"""

import pytest

import repro
from repro.bench.config import TellConfig
from repro.elastic.autoscaler import Autoscaler, AutoscalerPolicy
from repro.elastic.coordinator import ElasticCoordinator
from repro.elastic.migration import (assert_migration_clean, capture_pins,
                                     migrate_partition, run_moves_direct)
from repro.elastic.topology import PlacementSpec
from repro.errors import InvalidState
from repro.sim.kernel import delay_of
from repro.store.cluster import StorageCluster
from repro.workloads.tpcc.params import TpccScale


def make_cluster(n_nodes=3, rf=2, ppn=4):
    return StorageCluster(n_nodes=n_nodes, replication_factor=rf,
                          partitions_per_node=ppn)


def sim_config(**overrides):
    defaults = dict(
        processing_nodes=2,
        storage_nodes=2,
        threads_per_pn=4,
        scale=TpccScale.tiny(2),
        duration_us=120_000.0,
        warmup_us=10_000.0,
        seed=7,
    )
    defaults.update(overrides)
    return TellConfig(**defaults)


class TestPlacementSpec:
    def test_parse_plain_and_virtual(self):
        assert PlacementSpec.parse("hash").kind == "hash"
        spec = PlacementSpec.parse("range:16")
        assert (spec.kind, spec.virtual_nodes) == ("range", 16)

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidState):
            PlacementSpec.parse("consistent-hashing")

    def test_malformed_count_rejected(self):
        with pytest.raises(InvalidState):
            PlacementSpec.parse("hash:lots")

    def test_database_config_validates_placement(self):
        with pytest.raises(InvalidState):
            repro.connect(storage_nodes=2, placement="bogus")

    def test_range_placement_deployable(self):
        with repro.connect(storage_nodes=2, placement="range") as db:
            assert db.cluster.topology.placement.kind == "range"


class TestTopology:
    def test_every_membership_change_bumps_epoch(self):
        cluster = make_cluster()
        topo = cluster.topology
        assert topo.epoch == 1
        node = cluster.create_node()
        assert topo.epoch == 2
        run_moves_direct(cluster, topo.plan_drain(node.node_id))
        cluster.detach_node(node.node_id)
        assert topo.epoch > 2
        assert [entry[0] for entry in topo.epoch_log] == \
            list(range(1, topo.epoch + 1))

    def test_duplicate_handoff_rejected(self):
        cluster = make_cluster()
        topo = cluster.topology
        cluster.create_node()
        move = topo.plan_rebalance()[0]
        topo.begin_handoff(move.partition_id, move.src, move.dst)
        with pytest.raises(InvalidState):
            topo.begin_handoff(move.partition_id, move.src, move.dst)

    def test_finish_handoff_promotes_atomically(self):
        cluster = make_cluster()
        topo = cluster.topology
        node = cluster.create_node()
        move = next(m for m in topo.plan_rebalance()
                    if m.dst == node.node_id)
        assert topo.owner_of(move.partition_id) == move.src
        handoff = topo.begin_handoff(move.partition_id, move.src, move.dst)
        # mid-handoff the destination rides along as an extra backup
        replicas = topo.ownership()[move.partition_id]
        assert replicas[0] == move.src and move.dst in replicas
        topo.finish_handoff(handoff)
        replicas = topo.ownership()[move.partition_id]
        assert replicas[0] == move.dst and move.src not in replicas

    def test_fail_over_aborts_touching_handoffs(self):
        cluster = make_cluster()
        topo = cluster.topology
        node = cluster.create_node()
        move = next(m for m in topo.plan_rebalance()
                    if m.dst == node.node_id)
        handoff = topo.begin_handoff(move.partition_id, move.src, move.dst)
        cluster.nodes[move.src].crash()
        topo.fail_over(move.src, [n for n in topo.node_ids()
                                  if n != move.src])
        assert not topo.handoff_active(handoff)
        assert not topo.migrations_in_flight()

    def test_plans_are_deterministic(self):
        plans = []
        for _ in range(2):
            cluster = make_cluster()
            cluster.create_node()
            plans.append([
                (m.partition_id, m.src, m.dst)
                for m in cluster.topology.plan_rebalance()
            ])
        assert plans[0] == plans[1] and plans[0]

    def test_plan_drain_avoids_drained_node(self):
        cluster = make_cluster(n_nodes=4)
        moves = cluster.topology.plan_drain(1)
        assert moves
        assert all(m.src == 1 and m.dst != 1 for m in moves)


class TestClusterAdmin:
    def _fill(self, session, rows=60):
        session.execute(
            "CREATE TABLE kv (id INT PRIMARY KEY, v INT)"
        )
        for i in range(rows):
            session.execute("INSERT INTO kv VALUES (?, ?)", [i, i * 3])

    def test_add_then_drain_keeps_data(self):
        with repro.connect(storage_nodes=3, replication_factor=2) as db:
            session = db.session()
            self._fill(session)
            with db.admin() as admin:
                node_id = admin.add_storage_node()
                assert db.cluster.topology.is_balanced()
                admin.remove_storage_node(node_id, drain=True)
            assert len(db.cluster.nodes) == 3
            rows = session.query("SELECT COUNT(*) AS n, SUM(v) AS s FROM kv")
            assert rows[0]["n"] == 60
            assert rows[0]["s"] == sum(i * 3 for i in range(60))

    def test_wait_balanced_and_topology_view(self):
        with repro.connect(storage_nodes=2) as db:
            with db.admin() as admin:
                admin.add_storage_node(rebalance=False)
                admin.wait_balanced()
                view = admin.topology()
        assert view["balanced"] is True
        assert view["epoch"] == db.cluster.topology.epoch
        assert sorted(view["master_counts"]) == view["nodes"]
        assert view["n_partitions"] == db.cluster.partitioner.n_partitions

    def test_pn_grow_shrink(self):
        with repro.connect(storage_nodes=2) as db:
            session = db.session()
            session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            with db.admin() as admin:
                new = admin.grow_pns(2)
                assert len(db.processing_nodes) >= 3
                rolled_back = admin.shrink_pns(2)
            assert rolled_back == []
            assert all(pn not in db.processing_nodes for pn in new)

    def test_closed_database_refuses_admin(self):
        db = repro.connect(storage_nodes=2)
        db.close()
        with pytest.raises(InvalidState):
            db.admin()

    def test_direct_cluster_mutation_warns(self):
        with repro.connect(storage_nodes=2) as db:
            with pytest.deprecated_call():
                db.cluster.add_node()


class TestMigrationLeaks:
    def test_aborted_migration_leaks_nothing(self):
        """The regression the ``_backfill_index`` leak taught us to pin:
        an aborted migration must leave no handoff residue, no partial
        copy, no open transaction, and no lav pin."""
        with repro.connect(storage_nodes=3, replication_factor=2) as db:
            session = db.session()
            session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            for i in range(40):
                session.execute("INSERT INTO t VALUES (?, ?)", [i, i])
            cluster = db.cluster
            pins = capture_pins(db.commit_managers)
            with db.admin() as admin:
                admin.add_storage_node(rebalance=False)
            moves = cluster.topology.plan_rebalance()
            move = moves[0]
            steps = migrate_partition(cluster, move, batch_cells=1)
            next(steps)  # first batch yielded; handoff registered
            assert cluster.topology.migrations_in_flight()
            cluster.nodes[move.dst].crash()  # destination dies mid-copy
            with pytest.raises(StopIteration) as outcome:
                while True:
                    next(steps)
            assert outcome.value.value is False  # aborted, not committed
            cluster.nodes[move.dst].restart()
            assert_migration_clean(cluster, db.commit_managers, pins)

    def test_committed_migration_leaks_nothing(self):
        with repro.connect(storage_nodes=2) as db:
            session = db.session()
            session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            for i in range(20):
                session.execute("INSERT INTO t VALUES (?)", [i])
            pins = capture_pins(db.commit_managers)
            with db.admin() as admin:
                admin.add_storage_node()
            assert_migration_clean(db.cluster, db.commit_managers, pins)


def _run_diurnal(config, double_at=30_000.0, halve_at=70_000.0):
    """Build a deployment, schedule a live SN double + halve, run it."""
    from repro.bench.simcluster import SimulatedTell

    deployment = SimulatedTell(config)
    deployment.load()
    coordinator = ElasticCoordinator(deployment, batch_cells=64)
    sim = deployment.sim
    base = config.storage_nodes
    sim.call_at(double_at, lambda: sim.spawn(
        coordinator.scale_storage_to(base * 2), name="double"))
    sim.call_at(halve_at, lambda: sim.spawn(
        coordinator.scale_storage_to(base), name="halve"))
    metrics = deployment.run()
    return deployment, coordinator, metrics


class TestLiveElasticity:
    @pytest.mark.parametrize("isolation", ["si", "wsi", "ssi"])
    def test_diurnal_double_halve_sanitized(self, isolation, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        deployment, coordinator, metrics = _run_diurnal(
            sim_config(isolation=isolation)
        )
        # run() already asserted the sanitizer log is clean
        assert metrics.total_committed > 50
        assert coordinator.stats.partitions_moved > 0
        assert len(deployment.cluster.nodes) == 2
        deployment.cluster.topology.assert_no_leaks(deployment.cluster)

    def test_fixed_seed_reproduces_migration_schedule(self):
        runs = []
        for _ in range(2):
            deployment, coordinator, metrics = _run_diurnal(sim_config())
            runs.append((
                coordinator.events,
                list(deployment.cluster.topology.epoch_log),
                metrics.digest(),
            ))
        assert runs[0] == runs[1]

    def test_wrong_owner_redirects_recover(self):
        deployment, coordinator, metrics = _run_diurnal(sim_config())
        from repro.dispatch import WrongOwnerRedirect

        redirectors = [mw for mw in deployment.interceptors
                       if isinstance(mw, WrongOwnerRedirect)]
        assert len(redirectors) == 1
        # Redirects happened and every one of them recovered: no
        # WrongOwner error ever surfaced as a transaction outcome.
        assert metrics.total_committed > 50

    def test_pn_pool_grows_and_shrinks_live(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.bench.simcluster import SimulatedTell

        deployment = SimulatedTell(sim_config())
        deployment.load()
        coordinator = ElasticCoordinator(deployment)
        sim = deployment.sim
        sim.call_at(30_000.0, lambda: coordinator.grow_pns(2))
        sim.call_at(70_000.0, lambda: sim.spawn(
            coordinator.shrink_pns(2), name="shrink"))
        metrics = deployment.run()
        assert metrics.total_committed > 50
        assert deployment.active_pn_ids() == [0, 1]
        events = [what for _at, what in coordinator.events]
        assert any(what.startswith("pn-add") for what in events)
        assert any(what.startswith("pn-recovered") for what in events)

    def test_sn_kill_mid_migration_chaos(self, monkeypatch):
        """Kill the source of the first in-flight handoff: the fail-over
        aborts it, the migration unwinds, the run stays clean."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.bench.simcluster import SimulatedTell

        config = sim_config(storage_nodes=3, replication_factor=2)
        deployment = SimulatedTell(config)
        deployment.load()
        coordinator = ElasticCoordinator(deployment, batch_cells=8)
        sim = deployment.sim
        topo = deployment.cluster.topology
        sim.call_at(30_000.0, lambda: sim.spawn(
            coordinator.scale_storage_to(4), name="grow"))
        killed = []

        def killer():
            while not topo.migrations_in_flight():
                yield delay_of(50.0)
            victim = topo.migrations_in_flight()[0].src
            deployment.management.handle_node_failure(victim)
            killed.append(victim)

        sim.spawn(killer(), name="killer")
        metrics = deployment.run()
        assert killed, "the chaos process never found a live handoff"
        assert metrics.total_committed > 50
        assert coordinator.stats.aborted_handoffs >= 1
        assert any("fail-over" in reason
                   for _epoch, reason in topo.epoch_log)
        topo.assert_no_leaks(deployment.cluster)


class TestAutoscaler:
    def _autoscaler(self, **policy):
        from repro.bench.simcluster import SimulatedTell

        deployment = SimulatedTell(sim_config())
        coordinator = ElasticCoordinator(deployment)
        return Autoscaler(coordinator, AutoscalerPolicy(**policy))

    def _signals(self, queue=0.0, p99=0.0, aborts=0.0, txns=100.0):
        return {"queue_us": queue, "p99_us": p99, "abort_rate": aborts,
                "txns": txns}

    def test_policy_validation(self):
        with pytest.raises(InvalidState):
            AutoscalerPolicy(interval_us=0)
        with pytest.raises(InvalidState):
            AutoscalerPolicy(min_storage_nodes=8, max_storage_nodes=4)

    def test_sustained_backlog_scales_storage_out(self):
        scaler = self._autoscaler(evidence_ticks=2)
        assert scaler.decide(self._signals(queue=100.0)) is None
        assert scaler.decide(self._signals(queue=100.0)) == "sn-add"

    def test_tail_latency_without_backlog_grows_pns(self):
        scaler = self._autoscaler(evidence_ticks=2)
        assert scaler.decide(self._signals(p99=5_000.0)) is None
        assert scaler.decide(self._signals(p99=5_000.0)) == "pn-grow"

    def test_sustained_idleness_scales_storage_in(self):
        scaler = self._autoscaler(evidence_ticks=2, min_storage_nodes=1)
        assert scaler.decide(self._signals(queue=0.5, p99=100.0)) is None
        assert scaler.decide(self._signals(queue=0.5, p99=100.0)) \
            == "sn-remove"

    def test_contention_thrashing_shrinks_pns(self):
        scaler = self._autoscaler()
        # the deployment has not run yet: mark its PN pool live by hand
        scaler.deployment._pn_active.update({0: True, 1: True})
        assert scaler.decide(self._signals(aborts=0.6)) == "pn-shrink"

    def test_bounds_respected(self):
        scaler = self._autoscaler(evidence_ticks=1, min_storage_nodes=2,
                                  max_storage_nodes=2)
        assert scaler.decide(self._signals(queue=100.0)) is None
        assert scaler.decide(self._signals(queue=0.5, p99=1.0)) is None

    def test_no_evidence_without_traffic(self):
        scaler = self._autoscaler(evidence_ticks=1)
        assert scaler.decide(self._signals(queue=100.0, txns=0.0)) is None

    def test_live_run_decision_log_is_deterministic(self):
        logs = []
        for _ in range(2):
            from repro.bench.simcluster import SimulatedTell

            deployment = SimulatedTell(sim_config(threads_per_pn=8))
            deployment.load()
            coordinator = ElasticCoordinator(deployment)
            scaler = Autoscaler(coordinator, AutoscalerPolicy(
                interval_us=20_000.0, evidence_ticks=2, cooldown_ticks=1,
                min_storage_nodes=2, max_storage_nodes=4,
            ))
            deployment.sim.spawn(
                scaler.process(deployment.config.duration_us),
                name="autoscaler",
            )
            deployment.run()
            logs.append(scaler.decision_log())
        assert logs[0] == logs[1]
        assert logs[0]  # it ticked
