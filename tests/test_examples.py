"""Smoke tests: the shipped examples must run end to end."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "aborted as expected" in output
        assert "final price: 259.0" in output

    def test_bank_transfers(self):
        output = run_example("bank_transfers.py")
        assert "total balance: 10000" in output
        assert "total balance after recovery: 10000" in output

    def test_elasticity_failover(self):
        output = run_example("elasticity_failover.py")
        assert "data intact: 200 rows" in output
        assert "replication factor restored: True" in output

    def test_mixed_workload(self):
        output = run_example("mixed_workload.py")
        assert "analyst snapshot stable under concurrent OLTP" in output
        assert "-> True" in output
