"""Tests for EXPLAIN: the planner's access-path choices made visible."""

import pytest

from repro.api import Database


@pytest.fixture
def session():
    db = Database(storage_nodes=2)
    session = db.session()
    session.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer INT, "
        "region TEXT, total DECIMAL)"
    )
    session.execute("CREATE INDEX orders_customer ON orders (customer)")
    session.execute(
        "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT)"
    )
    return session


def plan_text(session, sql, params=()):
    return "\n".join(session.explain(sql, params))


class TestAccessPaths:
    def test_pk_point_lookup(self, session):
        plan = plan_text(session, "SELECT * FROM orders WHERE id = 5")
        assert "point lookup via orders_pk" in plan

    def test_secondary_index_lookup(self, session):
        plan = plan_text(
            session, "SELECT * FROM orders WHERE customer = 7"
        )
        assert "orders_customer" in plan
        assert "full scan" not in plan

    def test_range_scan(self, session):
        plan = plan_text(
            session, "SELECT * FROM orders WHERE id > 10 AND id < 20"
        )
        assert "range via orders_pk" in plan

    def test_full_scan_with_pushdown(self, session):
        plan = plan_text(
            session, "SELECT * FROM orders WHERE region = 'emea'"
        )
        assert "full scan with storage-side" in plan

    def test_plain_full_scan(self, session):
        plan = plan_text(session, "SELECT * FROM orders")
        assert plan.strip().endswith("full scan")

    def test_parameters_resolved(self, session):
        plan = plan_text(
            session, "SELECT * FROM orders WHERE id = ?", [42]
        )
        assert "42" in plan


class TestJoinsAndShape:
    def test_index_nested_loop(self, session):
        plan = plan_text(
            session,
            "SELECT * FROM orders o JOIN customers c ON c.id = o.customer",
        )
        assert "index nested-loop join via customers_pk" in plan

    def test_hash_join_on_unindexed_column(self, session):
        plan = plan_text(
            session,
            "SELECT * FROM orders a JOIN orders b ON a.region = b.region",
        )
        assert "hash join on region" in plan

    def test_nested_loop_fallback(self, session):
        plan = plan_text(
            session,
            "SELECT * FROM orders a JOIN orders b ON a.total < b.total",
        )
        assert "nested-loop join" in plan

    def test_post_processing_lines(self, session):
        plan = plan_text(
            session,
            "SELECT region, COUNT(*) FROM orders WHERE total > 5 "
            "GROUP BY region ORDER BY region LIMIT 3",
        )
        assert "group by 1 expr(s)" in plan
        assert "sort by 1 key(s)" in plan
        assert "limit 3" in plan

    def test_for_update_marker(self, session):
        plan = plan_text(
            session, "SELECT * FROM orders WHERE id = 1 FOR UPDATE"
        )
        assert "lock rows (FOR UPDATE)" in plan


class TestDmlPlans:
    def test_update_plan(self, session):
        plan = plan_text(session, "UPDATE orders SET total = 0 WHERE id = 1")
        assert plan.startswith("UPDATE orders")
        assert "point lookup" in plan

    def test_delete_plan(self, session):
        plan = plan_text(session, "DELETE FROM orders WHERE customer = 2")
        assert plan.startswith("DELETE orders")
        assert "orders_customer" in plan

    def test_insert_plan(self, session):
        plan = plan_text(session, "INSERT INTO orders VALUES (1, 2, 'x', 3)")
        assert "INSERT 1 row(s)" in plan
