"""Tests for the extensions beyond the paper's shipped system:

* SELECT FOR UPDATE / conflict materialization (closing SI's write-skew
  gap selectively);
* interleaved tid assignment (the paper's stated near-future work);
* storage-node failure *during* a simulated TPC-C run.
"""

import pytest

from repro.api import Database
from repro.core.commit_manager import CommitManager
from repro.errors import InvalidState, SqlPlanError, TransactionAborted
from repro.store.cluster import StorageCluster


class TestForUpdate:
    @pytest.fixture
    def db(self):
        db = Database()
        session = db.session()
        session.execute(
            "CREATE TABLE doctors (id INT PRIMARY KEY, on_call INT)"
        )
        session.execute("INSERT INTO doctors VALUES (1, 1), (2, 1)")
        return db

    def test_write_skew_without_for_update(self, db):
        """Baseline: plain SI permits the write-skew anomaly."""
        a, b = db.session(), db.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.query("SELECT * FROM doctors WHERE on_call = 1")
        b.query("SELECT * FROM doctors WHERE on_call = 1")
        a.execute("UPDATE doctors SET on_call = 0 WHERE id = 1")
        b.execute("UPDATE doctors SET on_call = 0 WHERE id = 2")
        a.execute("COMMIT")
        b.execute("COMMIT")  # both commit: nobody is on call any more
        check = db.session()
        rows = check.query("SELECT COUNT(*) AS n FROM doctors WHERE on_call = 1")
        assert rows == [{"n": 0}]

    def test_for_update_prevents_write_skew(self, db):
        a, b = db.session(), db.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.query("SELECT * FROM doctors WHERE on_call = 1 FOR UPDATE")
        b.query("SELECT * FROM doctors WHERE on_call = 1 FOR UPDATE")
        a.execute("UPDATE doctors SET on_call = 0 WHERE id = 1")
        b.execute("UPDATE doctors SET on_call = 0 WHERE id = 2")
        a.execute("COMMIT")
        with pytest.raises(TransactionAborted):
            b.execute("COMMIT")
        check = db.session()
        rows = check.query("SELECT COUNT(*) AS n FROM doctors WHERE on_call = 1")
        assert rows == [{"n": 1}]

    def test_for_update_read_only_still_conflicts(self, db):
        """Even a transaction that writes nothing else conflicts when its
        FOR UPDATE row is concurrently modified."""
        a, b = db.session(), db.session()
        a.execute("BEGIN")
        a.query("SELECT * FROM doctors WHERE id = 1 FOR UPDATE")
        b.execute("UPDATE doctors SET on_call = 5 WHERE id = 1")
        with pytest.raises(TransactionAborted):
            a.execute("COMMIT")

    def test_for_update_rejected_on_joins(self, db):
        session = db.session()
        session.execute("BEGIN")
        with pytest.raises(SqlPlanError):
            session.query(
                "SELECT * FROM doctors a JOIN doctors b ON a.id = b.id "
                "FOR UPDATE"
            )
        session.execute("ROLLBACK")

    def test_table_lock_api(self, db):
        session = db.session()
        other = db.session()
        session.execute("BEGIN")
        table = session.table("doctors")
        session.runner.run(table.lock((1,)))
        other.execute("UPDATE doctors SET on_call = 9 WHERE id = 1")
        with pytest.raises(TransactionAborted):
            session.commit()


class TestInterleavedTids:
    def test_uniqueness_across_managers(self):
        store = StorageCluster(n_nodes=2)
        managers = [
            CommitManager(i, store.execute, interleaved=True, n_managers=3)
            for i in range(3)
        ]
        tids = [m.start().tid for m in managers for _ in range(20)]
        assert len(set(tids)) == 60

    def test_residue_classes(self):
        store = StorageCluster(n_nodes=2)
        manager = CommitManager(
            1, store.execute, interleaved=True, n_managers=3
        )
        for _ in range(5):
            assert manager.start().tid % 3 == 2  # cm_id 1 -> residue 2

    def test_no_shared_counter_round_trips(self):
        store = StorageCluster(n_nodes=2)
        manager = CommitManager(
            0, store.execute, interleaved=True, n_managers=2
        )
        for _ in range(100):
            assert manager.start().range_refilled is False
        assert manager.range_refills == 0

    def test_idle_manager_does_not_stall_base(self):
        store = StorageCluster(n_nodes=2)
        busy = CommitManager(0, store.execute, interleaved=True, n_managers=2)
        idle = CommitManager(1, store.execute, interleaved=True, n_managers=2)
        for _ in range(30):
            busy.set_committed(busy.start().tid)
        busy.sync([0, 1])
        idle.sync([0, 1])
        busy.sync([0, 1])
        assert busy.completed.base >= 30

    def test_retired_tids_never_assigned(self):
        store = StorageCluster(n_nodes=2)
        busy = CommitManager(0, store.execute, interleaved=True, n_managers=2)
        idle = CommitManager(1, store.execute, interleaved=True, n_managers=2)
        for _ in range(20):
            busy.set_committed(busy.start().tid)
        busy.sync([0, 1])
        idle.sync([0, 1])  # retires a prefix of idle's stripe
        fresh = idle.start().tid
        assert not idle.completed.contains(fresh), (
            "an assigned tid must not be pre-completed"
        )

    def test_invalid_configuration(self):
        store = StorageCluster(n_nodes=2)
        with pytest.raises(InvalidState):
            CommitManager(5, store.execute, interleaved=True, n_managers=2)

    def test_database_integration(self):
        db = Database(commit_managers=2, interleaved_tids=True)
        a, b = db.session(), db.session()
        a.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        b.refresh_catalog()
        a.execute("INSERT INTO t VALUES (1, 1)")
        db.sync_commit_managers()
        b.execute("UPDATE t SET v = 2 WHERE id = 1")
        db.sync_commit_managers()
        assert a.query("SELECT v FROM t WHERE id = 1") == [{"v": 2}]


class TestStorageFailureDuringRun:
    def test_sn_crash_mid_simulation(self):
        """Crash a storage node mid-run (RF2): the management node fails
        over, the workload continues, and the final state is consistent."""
        from repro.bench.config import TellConfig
        from repro.bench.simcluster import SimulatedTell
        from repro.store.management import ManagementNode
        from repro.workloads.tpcc.params import TpccScale

        config = TellConfig(
            processing_nodes=2, storage_nodes=4, replication_factor=2,
            threads_per_pn=6, scale=TpccScale.tiny(4),
            duration_us=120_000.0, warmup_us=0.0, seed=9,
        )
        deployment = SimulatedTell(config)
        deployment.load()
        management = ManagementNode(deployment.cluster)

        def crash_and_recover():
            deployment.cluster.nodes[1].crash()
            management.handle_node_failure(1)

        deployment.sim.call_at(60_000.0, crash_and_recover)
        metrics = deployment.run()
        deployment.quiesce()

        assert metrics.total_committed > 50
        # all data still served, replicas consistent
        from repro import effects

        rows = deployment.cluster.execute(effects.Scan("data", None, None))
        assert len(rows) > 1000
        # TPC-C money invariant still holds after the failure
        catalog = deployment.catalog
        from repro.api.runner import DirectRunner, Router
        from repro.core.processing_node import ProcessingNode
        from repro.sql.table import IndexManager, Table

        pn = ProcessingNode(80)
        runner = DirectRunner(
            Router(deployment.cluster, deployment.commit_managers[0], pn_id=80)
        )
        txn = runner.run(pn.begin())
        warehouses = runner.run(
            Table(catalog.table("warehouse"), txn, IndexManager()).scan()
        )
        districts = runner.run(
            Table(catalog.table("district"), txn, IndexManager()).scan()
        )
        runner.run(txn.commit())
        w_schema = catalog.table("warehouse")
        d_schema = catalog.table("district")
        for _rid, warehouse in warehouses:
            w_id = warehouse[w_schema.position("w_id")]
            w_ytd = warehouse[w_schema.position("w_ytd")]
            d_sum = sum(
                d[d_schema.position("d_ytd")]
                for _r, d in districts
                if d[d_schema.position("d_w_id")] == w_id
            )
            n_districts = sum(
                1 for _r, d in districts
                if d[d_schema.position("d_w_id")] == w_id
            )
            assert w_ytd - 300_000.0 == pytest.approx(
                d_sum - 30_000.0 * n_districts, abs=0.05
            )
