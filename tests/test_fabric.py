"""Precise timing tests for the simulation fabric's cost model."""

import pytest

from repro import effects
from repro.bench.config import TellConfig
from repro.bench.simcluster import (
    CM_MESSAGE_BYTES,
    SN_SERVICE_CM_US,
    CorePool,
    SimFabric,
)
from repro.core.commit_manager import CommitManager
from repro.net.profiles import INFINIBAND_QDR
from repro.sim.kernel import Simulator
from repro.store.cluster import StorageCluster


@pytest.fixture
def fabric_env():
    config = TellConfig(storage_nodes=2, replication_factor=1,
                        partitions_per_node=4)
    sim = Simulator()
    cluster = StorageCluster(
        n_nodes=2, replication_factor=1, partitions_per_node=4
    )
    managers = [CommitManager(0, cluster.execute)]
    fabric = SimFabric(sim, cluster, managers, config)
    return sim, cluster, fabric


def run_request(sim, fabric, request, pn_pool=None):
    pool = pn_pool if pn_pool is not None else CorePool(4)
    holder = {}

    def proc():
        value = yield from fabric.perform(pool, 0, request)
        holder["value"] = value
        holder["finished_at"] = sim.now

    process = sim.spawn(proc())
    sim.run_until_complete(process)
    return holder


class TestStorageTiming:
    def test_get_round_trip_in_microseconds(self, fabric_env):
        sim, cluster, fabric = fabric_env
        cluster.execute(effects.Put("data", "k", "v"))
        holder = run_request(sim, fabric, effects.Get("data", "k"))
        assert holder["value"] == ("v", 1)
        # RTT = 2 x one_way + read service; far under a millisecond on IB.
        assert 4.0 < holder["finished_at"] < 25.0

    def test_batch_to_one_node_is_one_round_trip(self, fabric_env):
        sim, cluster, fabric = fabric_env
        # Find several keys living on the same storage node.
        keys = []
        probe = 0
        target = None
        while len(keys) < 5:
            routing = cluster.routing(effects.Get("data", probe))
            if target is None:
                target = routing.node_id
            if routing.node_id == target:
                keys.append(probe)
            probe += 1
        single = run_request(sim, fabric, effects.Get("data", keys[0]))
        t_single = single["finished_at"] - 0.0
        sim2, cluster2, fabric2 = (
            Simulator(),
            StorageCluster(n_nodes=2, replication_factor=1, partitions_per_node=4),
            None,
        )
        config = TellConfig(storage_nodes=2, replication_factor=1,
                            partitions_per_node=4)
        fabric2 = SimFabric(sim2, cluster2,
                            [CommitManager(0, cluster2.execute)], config)
        batch = run_request(sim2, fabric2, effects.multi_get("data", keys))
        # 5 ops in one message cost scarcely more than 1 op.
        assert batch["finished_at"] < t_single * 2.5
        assert fabric2.stats.messages == 1
        assert fabric2.stats.store_ops == 5

    def test_mutation_happens_at_service_time(self, fabric_env):
        """State changes are not visible before the request is serviced."""
        sim, cluster, fabric = fabric_env

        observed = {}

        def writer():
            yield from fabric.perform(CorePool(4), 0, effects.Put("data", "k", "v"))

        def early_peek():
            from repro.sim.kernel import Delay

            yield Delay(0.5)  # before the one-way latency has elapsed
            value, _ = cluster.execute(effects.Get("data", "k"))
            observed["early"] = value

        sim.spawn(writer())
        sim.spawn(early_peek())
        sim.run()
        assert observed["early"] is None
        assert cluster.execute(effects.Get("data", "k")) == ("v", 1)

    def test_queueing_at_saturated_node(self, fabric_env):
        """Concurrent requests to one node queue behind its core pool."""
        sim, cluster, fabric = fabric_env
        finish_times = []

        def client(key):
            def proc():
                yield from fabric.perform(
                    CorePool(4), 0, effects.Put("data", key, "x" * 2000)
                )
                finish_times.append(sim.now)

            return proc()

        # Many large writes to the same key -> same partition/node.
        for i in range(50):
            sim.spawn(client("hot"))
        sim.run()
        assert len(finish_times) == 50
        # The last finisher waited behind the others (service accumulates).
        assert max(finish_times) > min(finish_times) * 3

    def test_replication_extends_write_latency(self):
        config_rf1 = TellConfig(storage_nodes=3, replication_factor=1)
        config_rf3 = TellConfig(storage_nodes=3, replication_factor=3)
        times = {}
        for config in (config_rf1, config_rf3):
            sim = Simulator()
            cluster = StorageCluster(
                n_nodes=3, replication_factor=config.replication_factor
            )
            fabric = SimFabric(sim, cluster,
                               [CommitManager(0, cluster.execute)], config)
            holder = run_request(sim, fabric, effects.Put("data", "k", "v"))
            times[config.replication_factor] = holder["finished_at"]
        assert times[3] > times[1] + 5.0

    def test_scan_visits_every_master(self, fabric_env):
        sim, cluster, fabric = fabric_env
        for i in range(20):
            cluster.execute(effects.Put("data", i, i))
        before = fabric.stats.messages
        holder = run_request(sim, fabric, effects.Scan("data", None, None))
        assert len(holder["value"]) == 20
        assert fabric.stats.messages - before == len(cluster.nodes)


class TestCmTiming:
    def test_start_costs_one_round_trip(self, fabric_env):
        sim, cluster, fabric = fabric_env
        holder = run_request(sim, fabric, effects.StartTransaction())
        start = holder["value"]
        assert start.tid >= 1
        minimum = 2 * INFINIBAND_QDR.one_way(CM_MESSAGE_BYTES) + SN_SERVICE_CM_US
        assert holder["finished_at"] >= minimum

    def test_refill_charges_extra(self, fabric_env):
        sim, cluster, fabric = fabric_env
        first = run_request(sim, fabric, effects.StartTransaction())
        sim2 = fabric.sim
        t0 = sim2.now
        second = run_request(sim2, fabric, effects.StartTransaction())
        # The first start refilled the tid range (extra store round trip);
        # the second did not and must be faster.
        assert first["finished_at"] > (second["finished_at"] - t0)


class TestEthernetCpuTax:
    def test_per_message_cpu_charged_to_pn_pool(self):
        config = TellConfig(storage_nodes=2, network="ethernet-10g",
                            partitions_per_node=4)
        sim = Simulator()
        cluster = StorageCluster(n_nodes=2, partitions_per_node=4)
        fabric = SimFabric(sim, cluster,
                           [CommitManager(0, cluster.execute)], config)
        pool = CorePool(1)
        run_request(sim, fabric, effects.Get("data", "k"), pn_pool=pool)
        # send + receive charges reserved CPU on the single core
        assert pool.earliest(0.0) >= 2 * 7.9
