"""Tests for repro-flow (`repro-lint --flow`): the call graph links what
it should, every RF rule catches its planted defect and stays quiet on
the clean variant, the incremental cache round-trips, and the shipped
tree is flow-clean."""

import json
import os
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.lint import SourceModule, lint_sources
from repro.lint.cache import (
    SummaryCache,
    module_dependencies,
    reverse_dependents,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import load_sources
from repro.lint.flow.analysis import FlowAnalysis
from repro.lint.flow.summary import extract_module_flow
from repro.lint.index import ModuleSummary, ProjectIndex

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")


def _modules(*pairs):
    return [
        SourceModule(f"<{module}>", module, textwrap.dedent(text))
        for module, text in pairs
    ]


def flow_findings(*pairs):
    """RF findings of a fixture (module-local RL overlap is covered by
    test_lint.py)."""
    return [f for f in lint_sources(_modules(*pairs), flow=True).findings
            if f.rule.startswith("RF")]


def flow_codes(*pairs):
    return sorted({f.rule for f in flow_findings(*pairs)})


def analysis_of(sources):
    summaries = {
        s.module: ModuleSummary(s.module, s.tree)
        for s in sources if s.tree is not None and not s.skip_file
    }
    flows = {
        s.module: extract_module_flow(summaries[s.module], s.tree)
        for s in sources if s.tree is not None and not s.skip_file
    }
    return FlowAnalysis(ProjectIndex(summaries), flows)


@pytest.fixture(scope="module")
def src_sources():
    return load_sources([SRC], relative_to=str(REPO_ROOT))


@pytest.fixture(scope="module")
def src_analysis(src_sources):
    return analysis_of(src_sources)


def mutate(src_sources, edits):
    """Re-lint the real tree with planted text edits."""
    sources = list(src_sources)
    for path_suffix, old, new in edits:
        hit = False
        for i, source in enumerate(sources):
            if source.path.replace(os.sep, "/").endswith(path_suffix):
                assert old in source.text, f"pattern missing in {source.path}"
                sources[i] = SourceModule(
                    source.path, source.module, source.text.replace(old, new, 1))
                hit = True
        assert hit, path_suffix
    return [f for f in lint_sources(sources, flow=True).findings
            if f.rule.startswith("RF")]


# ---------------------------------------------------------------------------
# Shipped tree is flow-clean
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_flow_lint_clean_on_src(self, src_sources):
        result = lint_sources(src_sources, flow=True)
        assert result.findings == []

    def test_baseline_is_empty(self):
        data = json.loads(
            (REPO_ROOT / ".repro-lint-baseline.json").read_text())
        assert data["findings"] == []


# ---------------------------------------------------------------------------
# Call-graph resolution regressions (real tree)
# ---------------------------------------------------------------------------


class TestCallGraph:
    def test_dispatch_direct_chain(self, src_analysis):
        g = src_analysis.graph
        execute = ("repro.dispatch.direct", "Dispatcher.execute")
        handle = ("repro.dispatch.direct", "Dispatcher._handle")
        tail = ("repro.dispatch.direct", "Dispatcher._tail")
        assert handle in g.edges[execute]
        assert handle in g.edges[tail]
        assert ("repro.dispatch.core", "kind_of") in g.edges[handle]

    def test_yield_from_delegation_edges(self, src_analysis):
        g = src_analysis.graph
        perform = ("repro.bench.simcluster", "SimFabric.perform")
        single = ("repro.bench.simcluster", "SimFabric._perform_single")
        assert single in g.yf_edges[perform]
        script = ("repro.bench.simcluster", "SimulatedTell._transaction_script")
        commit = ("repro.core.transaction", "Transaction.commit")
        assert commit in g.yf_edges[script]

    def test_dispatch_table_fans_out_to_transactions(self, src_analysis):
        g = src_analysis.graph
        script = ("repro.bench.simcluster", "SimulatedTell._transaction_script")
        targets = g.edges[script]
        for name in ("new_order", "payment", "order_status",
                     "delivery", "stock_level"):
            assert ("repro.workloads.tpcc.transactions", name) in targets

    def test_annotated_list_element_resolves_prepare_cm(self, src_analysis):
        # self.commit_managers[i].start resolves through the
        # List[CommitManager] annotation on SimFabric.__init__.
        g = src_analysis.graph
        prepare = ("repro.bench.simcluster", "SimFabric.prepare_cm")
        assert ("repro.core.commit_manager", "CommitManager.start") \
            in g.edges[prepare]

    def test_spawned_terminals_reach_commit_manager(self, src_analysis):
        assert ("repro.bench.simcluster", "SimulatedTell._terminal") \
            in src_analysis.graph.spawned
        assert ("repro.core.commit_manager", "CommitManager.start") \
            in src_analysis.sim_parents

    def test_tpcc_transactions_are_hot_and_sim_reachable(self, src_analysis):
        node = ("repro.workloads.tpcc.transactions", "new_order")
        assert node in src_analysis.sim_parents
        assert node in src_analysis.hot_parents

    def test_every_effect_leaf_is_routable(self, src_analysis):
        leaves = src_analysis.effect_leaves()
        assert len(leaves) >= 10
        assert all(src_analysis.is_routable(s) for s in leaves)


# ---------------------------------------------------------------------------
# RF001 -- wall clock / RNG reachable from sim entry points
# ---------------------------------------------------------------------------


class TestRF001:
    def test_planted_two_deep_in_commit_manager(self, src_sources):
        findings = mutate(src_sources, [(
            "core/commit_manager.py",
            "class CommitManager",
            "import time\n\n"
            "def _clock_probe():\n    return time.time()\n\n"
            "def _audit_hook():\n    return _clock_probe()\n\n"
            "class CommitManager",
        )])
        rf001 = [f for f in findings if f.rule == "RF001"]
        assert rf001, findings
        assert "_clock_probe" in rf001[0].message

    def test_cross_package_chain_into_workload(self, src_sources):
        # Wall clock OUTSIDE the simulated-time packages (RL003's scope)
        # but reachable from the spawned terminal through the dispatch
        # table: only the flow rule can see this.
        findings = mutate(src_sources, [
            ("workloads/tpcc/transactions.py",
             "def new_order(",
             "import time\n\ndef _stamp():\n    return time.time()\n\n"
             "def _audit():\n    return _stamp()\n\ndef new_order("),
            ("workloads/tpcc/transactions.py",
             'warehouse_table = ctx.table("warehouse")',
             '_audit()\n    warehouse_table = ctx.table("warehouse")'),
        ])
        assert [f.rule for f in findings] == ["RF001"]
        assert "SimulatedTell._terminal" in findings[0].message
        assert "new_order" in findings[0].message

    def test_unreached_helper_is_silent(self, src_sources):
        findings = mutate(src_sources, [(
            "workloads/tpcc/transactions.py",
            "def new_order(",
            "import time\n\ndef _stamp():\n    return time.time()\n\n"
            "def new_order(",
        )])
        assert findings == []

    def test_unseeded_rng_in_fixture(self):
        findings = flow_findings(
            ("repro.core.mini", """
                from repro.helpers.entropy import pick
                def choose():
                    return pick()
            """),
            ("repro.helpers.entropy", """
                import random
                def pick():
                    return random.random()
            """),
        )
        assert [f.rule for f in findings] == ["RF001"]
        assert "unseeded RNG" in findings[0].message

    def test_seeded_rng_is_silent(self):
        assert flow_codes(
            ("repro.core.mini", """
                from repro.helpers.entropy import make_rng
                def choose():
                    return make_rng()
            """),
            ("repro.helpers.entropy", """
                import random
                def make_rng():
                    return random.Random(42)
            """),
        ) == []


# ---------------------------------------------------------------------------
# RF002 / RF003 -- dispatcher exhaustiveness
# ---------------------------------------------------------------------------

# A miniature dispatch module: exact table + isinstance ladder, the same
# registration shapes as repro.dispatch.core.
MINI_DISPATCH = ("repro.dispatch.mini", """
    from repro import effects
    KIND_STORE = 0
    _KIND_BY_CLASS = {effects.Get: KIND_STORE}
    def classify(request):
        if isinstance(request, effects.StoreRequest):
            return KIND_STORE
        raise TypeError("unroutable request")
""")


class TestRF002RF003:
    def test_unregistered_leaf_and_yield_fire(self):
        findings = flow_findings(
            MINI_DISPATCH,
            ("repro.workloads.mini", """
                from repro import effects
                class Touch(effects.Request):
                    pass
                def script():
                    yield Touch()
            """),
        )
        assert sorted(f.rule for f in findings) == ["RF002", "RF003"]
        by_rule = {f.rule: f for f in findings}
        assert "Touch" in by_rule["RF003"].message
        assert "Touch" in by_rule["RF002"].message

    def test_ladder_subclass_is_silent(self):
        assert flow_codes(
            MINI_DISPATCH,
            ("repro.workloads.mini", """
                from repro import effects
                class TouchStore(effects.StoreRequest):
                    pass
                def script():
                    yield TouchStore()
            """),
        ) == []

    def test_silent_without_dispatch_module(self):
        # A fixture with no dispatcher linted must not call everything
        # unroutable.
        assert flow_codes(
            ("repro.workloads.mini", """
                from repro import effects
                class Touch(effects.Request):
                    pass
                def script():
                    yield Touch()
            """),
        ) == []

    def test_planted_unregistered_request_in_real_tree(self, src_sources):
        findings = mutate(src_sources, [(
            "repro/effects.py",
            "class Get(",
            "class Probe(Request):\n"
            "    __slots__ = ()\n\n\n"
            "class Get(",
        )])
        assert "RF003" in {f.rule for f in findings}

    def test_abstract_base_not_flagged(self, src_analysis):
        # Request/StoreRequest/... have subclasses, so they are not
        # leaves and RF003 ignores them.
        leaves = src_analysis.effect_leaves()
        assert ("repro.effects", "Request") not in leaves
        assert ("repro.effects", "StoreRequest") not in leaves


# ---------------------------------------------------------------------------
# RF004 -- sanitizer isolation, transitively
# ---------------------------------------------------------------------------


class TestRF004:
    def test_mutation_leak_through_helper(self):
        findings = flow_findings(
            ("repro.san.minisan", """
                from repro.core.minicore import poke
                def observe():
                    return poke()
            """),
            ("repro.core.minicore", """
                def poke(store):
                    store.put(1, 2)
            """),
        )
        assert [f.rule for f in findings] == ["RF004"]
        assert "protocol-mutating" in findings[0].message

    def test_obs_leak_through_helper(self):
        findings = flow_findings(
            ("repro.san.minisan", """
                from repro.san.helper import report
                def observe():
                    report()
            """),
            ("repro.san.helper", """
                from repro.obs import emit
                def report():
                    emit("san", {})
            """),
            ("repro.obs", """
                def emit(name, payload):
                    return None
            """),
        )
        rules = [f.rule for f in findings]
        assert rules == ["RF004"]
        # The finding anchors on the edge that leaves the observer set.
        assert findings[0].path == "<repro.san.helper>"

    def test_driver_modules_exempt(self):
        assert flow_codes(
            ("repro.san.scenarios", """
                from repro.core.minicore import poke
                def run_scenario():
                    return poke()
            """),
            ("repro.core.minicore", """
                def poke(store):
                    store.put(1, 2)
            """),
        ) == []

    def test_pure_shadow_read_is_silent(self):
        assert flow_codes(
            ("repro.san.minisan", """
                from repro.core.minicore import peek
                def observe():
                    return peek()
            """),
            ("repro.core.minicore", """
                def peek(store):
                    return store.get(1)
            """),
        ) == []

    def test_planted_leak_in_real_tree(self, src_sources):
        findings = mutate(src_sources, [(
            "san/si.py",
            "class SISanitizer(Interceptor):",
            "from repro.core.commit_manager import CommitManager\n\n"
            "def _poke(manager: CommitManager):\n"
            "    manager.recover()\n\n"
            "class SISanitizer(Interceptor):",
        )])
        assert "RF004" in {f.rule for f in findings}


# ---------------------------------------------------------------------------
# RF005 -- per-call allocation on perf-guarded hot paths
# ---------------------------------------------------------------------------


class TestRF005:
    def test_constant_delay_in_real_drive_loop(self, src_sources):
        findings = mutate(src_sources, [(
            "bench/simcluster.py", "yield Delay(wait)", "yield Delay(0.001)",
        )])
        assert [f.rule for f in findings] == ["RF005"]
        assert "SimulatedTell.run" in findings[0].message

    def test_constant_literal_in_hot_loop(self, src_sources):
        findings = mutate(src_sources, [(
            "workloads/tpcc/transactions.py",
            "item_ids = [(i_id,) for i_id, _sw, _q in params.items]",
            "for _ in range(2):\n"
            '        _weights = {"a": 1, "b": 2}\n'
            "    item_ids = [(i_id,) for i_id, _sw, _q in params.items]",
        )])
        assert [f.rule for f in findings] == ["RF005"]

    def test_cold_function_is_silent(self):
        # Constant Delay in a function nothing hot reaches.
        assert flow_codes(
            ("repro.tools.mini", """
                from repro.sim.kernel import Delay
                def cold():
                    yield Delay(1.5)
            """),
        ) == []

    def test_hot_root_fixture_fires(self):
        findings = flow_findings(
            ("repro.bench.scale", """
                from repro.sim.kernel import Delay
                def run_scale_point():
                    yield from pace()
                def pace():
                    yield Delay(1.5)
            """),
        )
        assert [f.rule for f in findings] == ["RF005"]
        assert "run_scale_point" in findings[0].message


# ---------------------------------------------------------------------------
# Suppression / baseline integration
# ---------------------------------------------------------------------------


class TestIntegration:
    def test_inline_suppression_silences_rf(self):
        findings = flow_findings(
            ("repro.core.mini", """
                from repro.helpers.entropy import pick
                def choose():
                    return pick()
            """),
            ("repro.helpers.entropy", """
                import random
                def pick():
                    return random.random()  # repro-lint: ignore[RF001]
            """),
        )
        assert findings == []

    def test_rf_rules_skipped_without_flow(self):
        findings = lint_sources(_modules(
            ("repro.core.mini", """
                from repro.helpers.entropy import pick
                def choose():
                    return pick()
            """),
            ("repro.helpers.entropy", """
                import time
                def pick():
                    return time.time()
            """),
        )).findings
        assert findings == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_flow_flag_clean_on_src(self, capsys):
        code = lint_main(["--flow", "--no-baseline", SRC])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_explain_rf_rule(self, capsys):
        assert lint_main(["--explain", "RF001"]) == 0
        out = capsys.readouterr().out
        assert "RF001" in out and "closure" in out

    def test_list_rules_includes_flow_family(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RF001", "RF002", "RF003", "RF004", "RF005"):
            assert code in out

    def test_dump_callgraph(self, capsys):
        assert lint_main(["--flow", "--dump-callgraph", SRC]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "repro.dispatch.direct:Dispatcher.execute" in data["nodes"]
        assert "repro.bench.simcluster:SimulatedTell._terminal" \
            in data["spawned"]
        edges = data["edges"]["repro.dispatch.direct:Dispatcher.execute"]
        assert "repro.dispatch.direct:Dispatcher._handle" in edges

    def test_dump_callgraph_requires_flow(self, capsys):
        assert lint_main(["--dump-callgraph", SRC]) == 2


# ---------------------------------------------------------------------------
# Incremental cache / --changed
# ---------------------------------------------------------------------------


class TestIncremental:
    def test_cache_roundtrip(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(textwrap.dedent("""
            from repro import effects
            def read(space, key):
                value = yield effects.Get(space, key)
                return value
        """))
        cache = SummaryCache(str(tmp_path / "cache.json"))
        assert cache.lookup(str(target)) is None
        import ast as ast_mod
        tree = ast_mod.parse(target.read_text())
        summary = ModuleSummary("repro.mod", tree)
        flow = extract_module_flow(summary, tree)
        cache.store(str(target), summary, flow)
        cache.save()

        reloaded = SummaryCache(str(tmp_path / "cache.json"))
        hit = reloaded.lookup(str(target))
        assert hit is not None
        summary2, flow2 = hit
        assert summary2.module == "repro.mod"
        assert "read" in flow2.functions
        assert summary2.resolve_name("effects") is None or True

        # Editing the file invalidates the entry.
        target.write_text(target.read_text() + "\n# changed\n")
        assert reloaded.lookup(str(target)) is None

    def test_reverse_dependents(self):
        sources = _modules(
            ("repro.a", "from repro.b import f\ndef g():\n    return f()"),
            ("repro.b", "def f():\n    return 1"),
            ("repro.c", "def h():\n    return 2"),
        )
        summaries = {
            s.module: ModuleSummary(s.module, s.tree) for s in sources
        }
        closure = reverse_dependents({"repro.b"}, summaries)
        assert closure == {"repro.a", "repro.b"}
        assert "repro.b" in module_dependencies(summaries["repro.a"])

    def test_changed_lints_only_changed_files(self, tmp_path):
        repo = tmp_path / "proj"
        pkg = repo / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        clean = "def helper():\n    return 1\n"
        (pkg / "util.py").write_text(clean)
        (pkg / "other.py").write_text("def other():\n    return 2\n")
        env = {**os.environ,
               "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}

        def git(*argv):
            subprocess.run(["git", *argv], cwd=repo, check=True,
                           capture_output=True, env=env)

        git("init", "-q")
        git("add", "-A")
        git("commit", "-qm", "seed")

        # Introduce a determinism defect in ONE file.
        (pkg / "util.py").write_text(
            "import time\n\ndef helper():\n    return time.time()\n")
        # And an (uncommitted-undetectable) defect would be caught too --
        # but other.py is unchanged, so it must come from the cache.
        cwd = os.getcwd()
        os.chdir(repo)
        try:
            code = lint_main([
                "--changed", "--no-baseline",
                "--cache", str(repo / "cache.json"), "src",
            ])
        finally:
            os.chdir(cwd)
        # util.py maps to module repro.util -- not a simulated-time
        # package member, so RL003 stays quiet; the point here is the
        # plumbing: only the changed file is linted and exit is clean.
        assert code == 0
        assert (repo / "cache.json").exists()

    def test_changed_reports_defect_in_changed_sim_file(self, tmp_path):
        repo = tmp_path / "proj"
        pkg = repo / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (repo / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "clocked.py").write_text("def now():\n    return 0.0\n")
        env = {**os.environ,
               "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}

        def git(*argv):
            subprocess.run(["git", *argv], cwd=repo, check=True,
                           capture_output=True, env=env)

        git("init", "-q")
        git("add", "-A")
        git("commit", "-qm", "seed")
        (pkg / "clocked.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n")
        cwd = os.getcwd()
        os.chdir(repo)
        try:
            code = lint_main([
                "--changed", "--no-baseline",
                "--cache", str(repo / "cache.json"), "src",
            ])
        finally:
            os.chdir(cwd)
        assert code == 1  # RL003 in the changed file
