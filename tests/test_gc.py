"""Tests for lazy garbage collection (Section 5.4)."""

import pytest

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.core.commit_manager import CommitManager
from repro.core.gc import GcStats, lazy_gc_loop, lazy_gc_pass
from repro.core.processing_node import ProcessingNode
from repro.core.spaces import DATA_SPACE, data_key
from repro.store.cluster import StorageCluster

K1 = data_key(1, 1)


@pytest.fixture
def env():
    cluster = StorageCluster(n_nodes=2)
    cm = CommitManager(0, cluster.execute)
    pn = ProcessingNode(0)
    runner = DirectRunner(Router(cluster, cm, pn_id=0))
    return cluster, cm, pn, runner


def bump_n_times(pn, runner, key, n):
    def bump(txn):
        value = yield from txn.read(key)
        yield from txn.update(key, (value[0] + 1,))

    for _ in range(n):
        runner.run(pn.run_transaction(bump))


class TestLazyGcPass:
    def test_prunes_versions_below_lav(self, env):
        cluster, cm, pn, runner = env
        # Hold an old snapshot so eager GC cannot prune during the run...
        def init(txn):
            txn.insert(K1, (0,))
            return None
            yield

        runner.run(pn.run_transaction(init))
        pin = runner.run(pn.begin())
        bump_n_times(pn, runner, K1, 5)
        record, _ = cluster.execute(effects.Get(DATA_SPACE, K1))
        assert len(record) > 2
        # ... then release it and sweep.
        runner.run(pin.abort())
        stats = runner.run(lazy_gc_pass(cm.lowest_active_version()))
        record, _ = cluster.execute(effects.Get(DATA_SPACE, K1))
        assert len(record) == 1
        assert stats.versions_removed >= 4

    def test_removes_fully_deleted_records(self, env):
        cluster, cm, pn, runner = env

        def init(txn):
            txn.insert(K1, ("x",))
            return None
            yield

        runner.run(pn.run_transaction(init))

        def deleter(txn):
            yield from txn.delete(K1)

        runner.run(pn.run_transaction(deleter))
        runner.run(lazy_gc_pass(cm.lowest_active_version()))
        value, version = cluster.execute(effects.Get(DATA_SPACE, K1))
        assert value is None and version == 0
        # cell is really gone: insert at version 0 works again
        ok, _ = cluster.execute(
            effects.PutIfVersion(DATA_SPACE, K1, "fresh", 0)
        )
        assert ok

    def test_respects_active_snapshots(self, env):
        cluster, cm, pn, runner = env

        def init(txn):
            txn.insert(K1, (0,))
            return None
            yield

        runner.run(pn.run_transaction(init))
        pin = runner.run(pn.begin())
        bump_n_times(pn, runner, K1, 3)
        runner.run(lazy_gc_pass(cm.lowest_active_version()))
        # The pinned snapshot must still read its version.
        assert runner.run(pin.read(K1)) == (0,)

    def test_stats_accounting(self, env):
        cluster, cm, pn, runner = env

        def init(txn):
            for i in range(5):
                txn.insert(data_key(1, i), (i,))
            return None
            yield

        runner.run(pn.run_transaction(init))
        stats = GcStats()
        runner.run(lazy_gc_pass(cm.lowest_active_version(), stats))
        assert stats.passes == 1
        assert stats.records_seen == 5
        assert stats.versions_removed == 0  # single versions are kept


class TestLazyGcLoop:
    def test_loop_runs_in_simulated_time(self, env):
        cluster, cm, pn, runner = env

        def init(txn):
            txn.insert(K1, (0,))
            return None
            yield

        runner.run(pn.run_transaction(init))
        bump_n_times(pn, runner, K1, 4)

        from repro.sim.kernel import Delay, Simulator

        sim = Simulator()
        stats = GcStats()

        def driver():
            generator = lazy_gc_loop(
                cm.lowest_active_version, interval_us=1000.0, stats=stats
            )
            value = None
            while True:
                request = generator.send(value)
                if isinstance(request, effects.Sleep):
                    yield Delay(request.duration)
                    value = None
                else:
                    value = cluster.execute(request)

        sim.spawn(driver())
        sim.run(until=3500.0)
        assert stats.passes == 3
        record, _ = cluster.execute(effects.Get(DATA_SPACE, K1))
        assert len(record) == 1
