"""Tests for the pluggable isolation-protocol layer.

Covers the strategy seam (factories, config, connect), the WSI/SSI
commit validators in isolation, the full commit pipeline under each
protocol (write skew eliminated under WSI/SSI, present-but-reported
under SI), the FOR UPDATE missing-key materialization fix, the obs
surface (mode gauge, validation counters, the ``validate`` span phase),
and the ``--suite isolation`` bench harness.
"""

import json

import pytest

import repro
from repro.api import DatabaseConfig
from repro.api.runner import DirectRunner, Router
from repro.core.commit_manager import CommitManager
from repro.core.isolation import (
    DEFAULT_PROTOCOL,
    ISOLATION_MODES,
    CommitValidator,
    SSICommitValidator,
    SIProtocol,
    SSIProtocol,
    WSIProtocol,
    make_protocol,
    make_validator,
)
from repro.core.processing_node import ProcessingNode
from repro.core.snapshot import SnapshotDescriptor
from repro.core.spaces import data_key
from repro.errors import InvalidState, TransactionAborted
from tests.conftest import interleave

K1 = data_key(1, 1)
K2 = data_key(1, 2)
K_MISSING = data_key(1, 777)


# ---------------------------------------------------------------------------
# the strategy seam: factories, config, connect
# ---------------------------------------------------------------------------


class TestFactories:
    def test_modes(self):
        assert ISOLATION_MODES == ("si", "wsi", "ssi")

    def test_protocols_are_shared_singletons(self):
        assert make_protocol("si") is DEFAULT_PROTOCOL
        assert make_protocol("wsi") is make_protocol("wsi")
        assert isinstance(make_protocol("si"), SIProtocol)
        assert isinstance(make_protocol("wsi"), WSIProtocol)
        assert isinstance(make_protocol("ssi"), SSIProtocol)

    def test_tracking_flags(self):
        assert not make_protocol("si").tracks_reads
        assert make_protocol("wsi").tracks_reads
        assert make_protocol("ssi").tracks_reads

    def test_validators(self):
        assert make_validator("si") is None
        assert type(make_validator("wsi")) is CommitValidator
        assert type(make_validator("ssi")) is SSICommitValidator
        # Validators are stateful: every call builds a fresh one.
        assert make_validator("wsi") is not make_validator("wsi")

    def test_unknown_mode_rejected(self):
        with pytest.raises(InvalidState):
            make_protocol("serializable")
        with pytest.raises(InvalidState):
            make_validator("serializable")


class TestConfigAndConnect:
    def test_config_default_and_validation(self):
        assert DatabaseConfig().isolation == "si"
        assert DatabaseConfig(isolation="ssi").isolation == "ssi"
        with pytest.raises(InvalidState):
            DatabaseConfig(isolation="read-committed")
        with pytest.raises(InvalidState):
            repro.connect(isolation="read-committed")

    def test_connect_si_has_no_validator(self):
        with repro.connect() as db:
            assert db.protocol is DEFAULT_PROTOCOL
            assert db.validator is None
            assert db.commit_managers[0].isolation_name == "si"

    def test_connect_wsi_shares_one_validator(self):
        with repro.connect(isolation="wsi", commit_managers=2) as db:
            assert isinstance(db.protocol, WSIProtocol)
            assert db.validator is not None
            for manager in db.commit_managers:
                assert manager.validator is db.validator
                assert manager.isolation_name == "wsi"
            pn = db.add_processing_node()
            assert pn.protocol is db.protocol


# ---------------------------------------------------------------------------
# the validators, unit-tested against synthetic windows
# ---------------------------------------------------------------------------


def snap(base):
    return SnapshotDescriptor(base=base)


class TestWsiValidator:
    def test_read_only_always_admitted(self):
        validator = CommitValidator()
        admitted = validator.validate_and_register(
            5, snap(0), read_keys=(K1, K2), write_keys=(), lav=0
        )
        assert admitted.ok
        # ... and read-only commits never enter the window under WSI.
        assert validator.is_empty()

    def test_concurrent_write_over_read_aborts(self):
        validator = CommitValidator()
        # tid 6 committed K1 while tid 5 (snapshot base 0) was running.
        assert validator.validate_and_register(
            6, snap(0), read_keys=(), write_keys=(K1,), lav=0
        ).ok
        verdict = validator.validate_and_register(
            5, snap(0), read_keys=(K1,), write_keys=(K2,), lav=0
        )
        assert not verdict.ok
        assert verdict.conflict_tid == 6

    def test_snapshot_containing_the_commit_is_not_concurrent(self):
        validator = CommitValidator()
        assert validator.validate_and_register(
            6, snap(0), read_keys=(), write_keys=(K1,), lav=0
        ).ok
        # Snapshot base 6 already sees tid 6's write: no conflict.
        assert validator.validate_and_register(
            9, snap(6), read_keys=(K1,), write_keys=(K2,), lav=0
        ).ok

    def test_disjoint_keys_admit(self):
        validator = CommitValidator()
        assert validator.validate_and_register(
            6, snap(0), read_keys=(), write_keys=(K1,), lav=0
        ).ok
        assert validator.validate_and_register(
            5, snap(0), read_keys=(K2,), write_keys=(K2,), lav=0
        ).ok
        assert validator.window_size() == 2

    def test_on_aborted_unregisters(self):
        validator = CommitValidator()
        validator.validate_and_register(
            6, snap(0), read_keys=(), write_keys=(K1,), lav=0
        )
        validator.on_aborted(6)  # LL/SC failed after validation
        assert validator.is_empty()
        # The retracted commit no longer aborts anyone.
        assert validator.validate_and_register(
            5, snap(0), read_keys=(K1,), write_keys=(K2,), lav=0
        ).ok

    def test_prune_by_lav(self):
        validator = CommitValidator()
        for tid in (3, 4, 9):
            validator.validate_and_register(
                tid, snap(0), read_keys=(), write_keys=(K1,), lav=0
            )
        # lav=5: tids 3 and 4 are inside every active snapshot now.
        validator.validate_and_register(
            12, snap(9), read_keys=(K2,), write_keys=(K2,), lav=5
        )
        assert validator.window_size() == 2  # 9 and 12 survive

    def test_mark_recovered_aborts_pre_crash_snapshots(self):
        validator = CommitValidator()
        validator.mark_recovered(10)
        stale = validator.validate_and_register(
            7, snap(4), read_keys=(K1,), write_keys=(K1,), lav=0
        )
        assert not stale.ok
        assert "fail-over" in stale.reason
        fresh = validator.validate_and_register(
            15, snap(12), read_keys=(K1,), write_keys=(K1,), lav=0
        )
        assert fresh.ok

    def test_mark_recovered_never_regresses(self):
        validator = CommitValidator()
        validator.mark_recovered(10)
        validator.mark_recovered(3)
        assert not validator.validate_and_register(
            7, snap(4), read_keys=(), write_keys=(K1,), lav=0
        ).ok


class TestSsiValidator:
    def test_write_skew_pair_aborts_second_doctor(self):
        validator = SSICommitValidator()
        # Doctor A read {K1,K2}, wrote K1; concurrent doctor B read
        # {K1,K2}, writes K2: B is a pivot (in-edge from A's read of K2,
        # out-edge to A's write of K1).
        assert validator.validate_and_register(
            6, snap(0), read_keys=(K1, K2), write_keys=(K1,), lav=0
        ).ok
        verdict = validator.validate_and_register(
            7, snap(0), read_keys=(K1, K2), write_keys=(K2,), lav=0
        )
        assert not verdict.ok
        assert "pivot" in verdict.reason

    def test_read_only_commits_are_registered(self):
        validator = SSICommitValidator()
        assert validator.validate_and_register(
            6, snap(0), read_keys=(K1,), write_keys=(), lav=0
        ).ok
        assert validator.window_size() == 1  # unlike WSI

    def test_closing_anothers_dangerous_structure_aborts(self):
        validator = SSICommitValidator()
        # tid 6 commits with an outgoing rw edge already (it read K1
        # which concurrent tid 5 wrote).
        assert validator.validate_and_register(
            5, snap(0), read_keys=(), write_keys=(K1,), lav=0
        ).ok
        assert validator.validate_and_register(
            6, snap(0), read_keys=(K1,), write_keys=(K2,), lav=0
        ).ok
        # tid 7 reads K2 (rw out to pivot 6) without any in-edge of its
        # own: it completes 5 -> 6 -> 7 and must abort.
        verdict = validator.validate_and_register(
            7, snap(0), read_keys=(K2,), write_keys=(data_key(1, 3),), lav=0
        )
        assert not verdict.ok
        assert "dangerous structure" in verdict.reason

    def test_single_edge_admits(self):
        validator = SSICommitValidator()
        assert validator.validate_and_register(
            5, snap(0), read_keys=(), write_keys=(K1,), lav=0
        ).ok
        # Out-edge only (read K1 written by 5), no in-edge: admitted.
        assert validator.validate_and_register(
            6, snap(0), read_keys=(K1,), write_keys=(K2,), lav=0
        ).ok


# ---------------------------------------------------------------------------
# the full pipeline: doctors racing through the dispatch layer
# ---------------------------------------------------------------------------


def isolation_env(cluster, mode):
    manager = CommitManager(
        0, cluster.execute, tid_range_size=32, validator=make_validator(mode)
    )
    pn = ProcessingNode(0, protocol=make_protocol(mode))
    router = Router(cluster, manager, pn_id=0)
    return manager, pn, DirectRunner(router), router


def doctor(pn, write_key, outcomes):
    try:
        txn = yield from pn.begin()
        values = yield from txn.read_many([K1, K2])
        on_call = sum(p[0] for p in values.values() if p is not None)
        if on_call >= 2:
            yield from txn.update(write_key, (0,))
        yield from txn.commit()
        outcomes.append("committed")
    except TransactionAborted:
        outcomes.append("aborted")


@pytest.mark.parametrize("mode,expected", [
    ("si", ["committed", "committed"]),   # write skew: both admit
    ("wsi", ["committed", "aborted"]),    # validation kills one doctor
    ("ssi", ["committed", "aborted"]),
])
def test_write_skew_outcomes_by_mode(cluster, mode, expected):
    manager, pn, runner, router = isolation_env(cluster, mode)

    def seed():
        txn = yield from pn.begin()
        txn.insert(K1, (1,))
        txn.insert(K2, (1,))
        yield from txn.commit()

    runner.run(seed())
    seed_validations = manager.validations  # the seed writer validates too
    outcomes = []
    interleave(router, [doctor(pn, K1, outcomes), doctor(pn, K2, outcomes)])
    assert sorted(outcomes) == sorted(expected)
    if mode == "si":
        assert manager.validations == 0
    else:
        assert manager.validations - seed_validations == 2
        assert manager.validation_aborts == 1
        # The constraint survived: at most one doctor went off call.
        final = runner.run(pn.begin())
        values = runner.run(final.read_many([K1, K2]))
        assert sum(p[0] for p in values.values()) >= 1


@pytest.mark.parametrize("mode", ["wsi", "ssi"])
def test_read_only_transactions_skip_validation(cluster, mode):
    manager, pn, runner, _router = isolation_env(cluster, mode)

    def seed():
        txn = yield from pn.begin()
        txn.insert(K1, ("x",))
        yield from txn.commit()

    def reader():
        txn = yield from pn.begin()
        value = yield from txn.read(K1)
        yield from txn.commit()
        return value

    runner.run(seed())
    validations_after_seed = manager.validations
    assert runner.run(reader()) == ("x",)
    assert manager.validations == validations_after_seed

    def scanner_mode_noted():
        txn = yield from pn.begin()
        assert txn.tracks_reads
        return txn.protocol.name

    assert runner.run(scanner_mode_noted()) == mode


def test_validation_abort_registers_nothing(cluster):
    """The aborted doctor must not itself abort later transactions."""
    manager, pn, runner, router = isolation_env(cluster, "wsi")

    def seed():
        txn = yield from pn.begin()
        txn.insert(K1, (1,))
        txn.insert(K2, (1,))
        yield from txn.commit()

    runner.run(seed())
    outcomes = []
    interleave(router, [doctor(pn, K1, outcomes), doctor(pn, K2, outcomes)])
    assert sorted(outcomes) == ["aborted", "committed"]

    def late_writer():
        txn = yield from pn.begin()
        values = yield from txn.read_many([K1, K2])
        total = sum(p[0] for p in values.values())
        yield from txn.update(K2, (total,))
        yield from txn.commit()

    runner.run(late_writer())  # no concurrent commits left: must admit
    assert manager.validation_aborts == 1


# ---------------------------------------------------------------------------
# the write_skew scenario under all three modes (the acceptance gate)
# ---------------------------------------------------------------------------


class TestWriteSkewScenario:
    def test_si_reports_the_anomaly(self):
        from repro.san.scenarios import write_skew

        log = write_skew(isolation="si")
        assert log.clean
        skew = [r for r in log.reports if r.code == "SSI-WRITE-SKEW"]
        assert len(skew) >= 1

    @pytest.mark.parametrize("mode", ["wsi", "ssi"])
    def test_validating_modes_eliminate_the_anomaly(self, mode):
        from repro.san.scenarios import write_skew

        log = write_skew(isolation=mode)
        # Zero anomalies: no violation (cycles escalate under these
        # modes) and no report either.
        assert log.clean
        assert [r for r in log.reports if r.code == "SSI-WRITE-SKEW"] == []


# ---------------------------------------------------------------------------
# read_for_update: the missing-key materialization fix
# ---------------------------------------------------------------------------


class TestReadForUpdateMissingKey:
    def test_missing_key_reads_none_and_stays_absent(self, cluster):
        _manager, pn, runner, _router = isolation_env(cluster, "si")

        def script():
            txn = yield from pn.begin()
            first = yield from txn.read_for_update(K_MISSING)
            again = yield from txn.read(K_MISSING)
            yield from txn.commit()
            return first, again

        assert runner.run(script()) == (None, None)

        def check():
            txn = yield from pn.begin()
            value = yield from txn.read(K_MISSING)
            yield from txn.commit()
            return value

        # The materialized tombstone commits as a no-op delete.
        assert runner.run(check()) is None

    def test_concurrent_for_update_readers_of_missing_key_conflict(
            self, cluster):
        """Regression: the read used to silently degrade to a plain read
        for absent keys, so both FOR UPDATE readers proceeded."""
        _manager, pn, runner, router = isolation_env(cluster, "si")
        outcomes = []

        def claimer(marker):
            try:
                txn = yield from pn.begin()
                existing = yield from txn.read_for_update(K_MISSING)
                if existing is None:
                    yield from txn.update(K_MISSING, (marker,))
                yield from txn.commit()
                outcomes.append(("committed", marker))
            except TransactionAborted:
                outcomes.append(("aborted", marker))

        interleave(router, [claimer("a"), claimer("b")])
        assert sorted(o for o, _ in outcomes) == ["aborted", "committed"]

        def check():
            txn = yield from pn.begin()
            value = yield from txn.read(K_MISSING)
            yield from txn.commit()
            return value

        winner = next(m for o, m in outcomes if o == "committed")
        assert runner.run(check()) == (winner,)

    def test_present_key_still_materializes_the_read(self, cluster):
        _manager, pn, runner, router = isolation_env(cluster, "si")

        def seed():
            txn = yield from pn.begin()
            txn.insert(K1, ("x",))
            yield from txn.commit()

        runner.run(seed())
        outcomes = []

        def toucher(tag):
            try:
                txn = yield from pn.begin()
                yield from txn.read_for_update(K1)
                yield from txn.commit()
                outcomes.append(("committed", tag))
            except TransactionAborted:
                outcomes.append(("aborted", tag))

        interleave(router, [toucher("a"), toucher("b")])
        assert sorted(o for o, _ in outcomes) == ["aborted", "committed"]


# ---------------------------------------------------------------------------
# the obs surface: mode gauge, validation counters, validate phase
# ---------------------------------------------------------------------------


class TestObsSurface:
    def test_mode_gauge_and_validation_counters(self, cluster):
        from repro.obs import MetricsRegistry
        from repro.obs.collect import watch_commit_manager

        manager, pn, runner, router = isolation_env(cluster, "wsi")

        def seed():
            txn = yield from pn.begin()
            txn.insert(K1, (1,))
            txn.insert(K2, (1,))
            yield from txn.commit()

        runner.run(seed())
        outcomes = []
        interleave(router, [doctor(pn, K1, outcomes),
                            doctor(pn, K2, outcomes)])

        registry = MetricsRegistry()
        watch_commit_manager(registry, manager)
        gauges = registry.snapshot()["gauges"]

        def series(name, **labels):
            for key, value in gauges.items():
                if key.startswith(name) and all(
                        f"{k}={v}" in key for k, v in labels.items()):
                    return value
            raise AssertionError(f"no series {name} {labels} in {gauges}")

        assert series("repro_isolation_mode", mode="wsi") == 1.0
        assert series("repro_cm_activity", what="validations") == 3.0
        assert series("repro_cm_activity", what="validation_aborts") == 1.0

    def test_si_manager_reports_si_mode(self, cluster):
        from repro.obs import MetricsRegistry
        from repro.obs.collect import watch_commit_manager

        manager, _pn, _runner, _router = isolation_env(cluster, "si")
        registry = MetricsRegistry()
        watch_commit_manager(registry, manager)
        gauges = registry.snapshot()["gauges"]
        assert any("repro_isolation_mode" in k and "mode=si" in k
                   for k in gauges)

    def test_validate_phase_appears_in_span_breakdown(self):
        with repro.connect(isolation="wsi", observability=True) as db:
            with db.session() as session:
                session.execute(
                    "CREATE TABLE duty (id INT PRIMARY KEY, on_call INT)"
                )
                session.execute("INSERT INTO duty VALUES (1, 1)")
                session.execute("UPDATE duty SET on_call = 0 WHERE id = 1")
            snapshot = db.obs.snapshot()
        phase_names = set()
        for row in snapshot["phases"]["rows"]:
            phase_names.update(row["phases"])
        assert "validate" in phase_names

    def test_validate_phase_absent_under_si(self):
        with repro.connect(observability=True) as db:
            with db.session() as session:
                session.execute(
                    "CREATE TABLE duty (id INT PRIMARY KEY, on_call INT)"
                )
                session.execute("INSERT INTO duty VALUES (1, 1)")
            snapshot = db.obs.snapshot()
        phase_names = set()
        for row in snapshot["phases"]["rows"]:
            phase_names.update(row["phases"])
        assert "validate" not in phase_names


# ---------------------------------------------------------------------------
# the bench suite
# ---------------------------------------------------------------------------


class TestIsolationBench:
    def test_point_shape_and_tradeoff(self):
        from repro.bench.isolation import run_isolation_point

        si = run_isolation_point("si", pairs=2, rounds=3)
        wsi = run_isolation_point("wsi", pairs=2, rounds=3)
        for row in (si, wsi):
            assert set(row) >= {
                "mode", "committed", "aborted", "abort_rate", "txns_per_s",
                "anomalies", "validations", "validation_aborts",
            }
        assert si["anomalies"] >= 1
        assert si["validations"] == 0
        assert wsi["anomalies"] == 0
        assert wsi["validation_aborts"] > 0
        assert wsi["committed"] < si["committed"]

    def test_merge_report_preserves_and_replaces(self, tmp_path):
        from repro.bench.isolation import merge_isolation_report

        path = tmp_path / "perf.json"
        path.write_text(json.dumps({"scale": {"points": []}}))
        merge_isolation_report(str(path), [
            {"mode": "si", "committed": 10},
            {"mode": "wsi", "committed": 7},
        ])
        merge_isolation_report(str(path), [{"mode": "wsi", "committed": 8}])
        report = json.loads(path.read_text())
        assert report["scale"] == {"points": []}  # untouched
        by_mode = {r["mode"]: r for r in report["isolation"]["modes"]}
        assert by_mode["si"]["committed"] == 10
        assert by_mode["wsi"]["committed"] == 8
        assert [r["mode"] for r in report["isolation"]["modes"]] == \
            ["si", "wsi"]

    def test_cli_suite_runs_without_report(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--suite", "isolation", "--report", "-"]) == 0
        out = capsys.readouterr().out
        assert "Isolation protocol trade-off" in out
        for mode in ("si", "wsi", "ssi"):
            assert mode in out
