"""Tests for repro-lint: every rule fires on a bad fixture, stays quiet
on the good variant, and honours inline suppression; plus engine
behaviour (baseline, skip-file, CLI) and the seeded-mutation check that
guards the linter itself against regressions."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import Baseline, SourceModule, lint_source, lint_sources
from repro.lint.cli import main as lint_main
from repro.lint.engine import module_name_for

REPO_ROOT = Path(__file__).resolve().parents[1]
TRANSACTION_PY = REPO_ROOT / "src" / "repro" / "core" / "transaction.py"
ISOLATION_BASE_PY = (
    REPO_ROOT / "src" / "repro" / "core" / "isolation" / "base.py"
)


def findings_for(source, module="repro.core.example"):
    return lint_source(textwrap.dedent(source), module=module)


def codes(source, module="repro.core.example"):
    return [f.rule for f in findings_for(source, module=module)]


# ---------------------------------------------------------------------------
# RL001 -- effect constructed but never yielded
# ---------------------------------------------------------------------------


class TestRL001:
    def test_bare_statement_fires(self):
        assert codes("""
            from repro import effects
            def commit():
                effects.PutIfVersion("data", 1, "v", 3)
                yield effects.ReportCommitted(7)
        """) == ["RL001"]

    def test_tuple_unpack_of_effect_fires(self):
        # The exact shape a deleted `yield` leaves behind.
        assert codes("""
            from repro import effects
            def rollback():
                ok, _ = effects.PutIfVersion("data", 1, "v", 3)
                yield effects.ReportAborted(7)
        """) == ["RL001"]

    def test_yield_from_effect_fires(self):
        assert codes("""
            from repro.effects import Get
            def read():
                value = yield from Get("data", 1)
                return value
        """) == ["RL001"]

    def test_effect_factory_dropped_fires(self):
        assert codes("""
            from repro.effects import multi_get
            def read_many(keys):
                multi_get("data", keys)
                yield None
        """) == ["RL001"]

    def test_yielded_and_batched_effects_are_clean(self):
        assert codes("""
            from repro import effects
            def commit(puts):
                puts.append(effects.PutIfVersion("data", 1, "v", 3))
                results = yield effects.Batch(puts)
                ok, _ = yield effects.PutIfVersion("data", 2, "w", 4)
                return results, ok
        """) == []

    def test_single_name_binding_is_clean(self):
        # Building an op to batch later is the idiomatic use.
        assert codes("""
            from repro import effects
            def build():
                op = effects.Get("data", 1)
                return op
        """) == []

    def test_suppressed(self):
        assert codes("""
            from repro import effects
            def probe():
                effects.Get("data", 1)  # repro-lint: ignore[RL001] repr probe
        """) == []


# ---------------------------------------------------------------------------
# RL002 -- generator coroutine called without `yield from`
# ---------------------------------------------------------------------------


class TestRL002:
    def test_plain_statement_call_fires(self):
        assert codes("""
            class Txn:
                def read(self, key):
                    yield key
                def commit(self):
                    self.read(1)
                    yield 2
        """) == ["RL002"]

    def test_yield_instead_of_yield_from_fires(self):
        assert codes("""
            class Txn:
                def read(self, key):
                    yield key
                def commit(self):
                    row = yield self.read(1)
                    return row
        """) == ["RL002"]

    def test_return_of_generator_from_generator_fires(self):
        assert codes("""
            class Txn:
                def read(self, key):
                    yield key
                def commit(self):
                    yield 1
                    return self.read(2)
        """) == ["RL002"]

    def test_module_level_generator_fires(self):
        assert codes("""
            def helper():
                yield 1
            def driver():
                helper()
                yield 2
        """) == ["RL002"]

    def test_yield_from_and_argument_passing_are_clean(self):
        assert codes("""
            def helper():
                yield 1
            def spawn(gen):
                return gen
            def driver():
                yield from helper()
                spawn(helper())
        """) == []

    def test_return_generator_from_plain_function_is_clean(self):
        # A non-generator factory returning a coroutine is a legit pattern.
        assert codes("""
            class Txn:
                def read(self, key):
                    yield key
                def reader(self):
                    return self.read(1)
        """) == []

    def test_unresolvable_receiver_is_not_flagged(self):
        # Calls through arbitrary receivers stay silent by design.
        assert codes("""
            class Txn:
                def commit(self, log):
                    log.append(1)
                    yield 2
        """) == []

    def test_inherited_generator_method_resolves(self):
        assert codes("""
            class Base:
                def fetch(self):
                    yield 1
            class Child(Base):
                def run(self):
                    self.fetch()
                    yield 2
        """) == ["RL002"]

    def test_suppressed(self):
        assert codes("""
            def helper():
                yield 1
            def driver():
                helper()  # repro-lint: ignore[RL002] deliberate no-op
                yield 2
        """) == []


# ---------------------------------------------------------------------------
# RL003 -- wall clock in simulated-time code
# ---------------------------------------------------------------------------


class TestRL003:
    def test_time_call_in_sim_module_fires(self):
        assert codes("""
            import time
            def now():
                return time.time()
        """, module="repro.sim.fixture") == ["RL003"]

    def test_from_import_fires(self):
        assert codes("""
            from time import perf_counter
        """, module="repro.store.fixture") == ["RL003"]

    def test_bench_is_exempt(self):
        assert codes("""
            import time
            def now():
                return time.perf_counter()
        """, module="repro.bench.fixture") == []

    def test_aliased_module_fires(self):
        assert codes("""
            import time as clock
            def now():
                return clock.monotonic()
        """, module="repro.core.fixture") == ["RL003"]

    def test_simulated_clock_is_clean(self):
        assert codes("""
            def now(sim):
                return sim.now
        """, module="repro.sim.fixture") == []

    def test_suppressed_with_standalone_comment(self):
        assert codes("""
            import time
            def now():
                # repro-lint: ignore[RL003] calibration runs outside the sim
                return time.time()
        """, module="repro.sim.fixture") == []


# ---------------------------------------------------------------------------
# RL004 -- module-level random / unseeded Random()
# ---------------------------------------------------------------------------


class TestRL004:
    def test_module_level_function_fires(self):
        assert codes("""
            import random
            def pick(items):
                return random.choice(items)
        """) == ["RL004"]

    def test_unseeded_random_fires(self):
        assert codes("""
            import random
            def rng():
                return random.Random()
        """) == ["RL004"]

    def test_unseeded_imported_random_fires(self):
        assert codes("""
            from random import Random
            def rng():
                return Random()
        """) == ["RL004"]

    def test_seeded_random_is_clean(self):
        assert codes("""
            import random
            def rng(seed):
                return random.Random(seed)
        """) == []

    def test_attribute_named_random_is_clean(self):
        # `self.random` is an instance attribute, not the module.
        assert codes("""
            class W:
                def pick(self):
                    return self.random.uniform(1, 10)
        """) == []


# ---------------------------------------------------------------------------
# RL005 -- set iteration
# ---------------------------------------------------------------------------


class TestRL005:
    def test_for_over_set_literal_fires(self):
        assert codes("""
            def f():
                for space in {"a", "b"}:
                    print(space)
        """) == ["RL005"]

    def test_comprehension_over_set_call_fires(self):
        assert codes("""
            def f(keys):
                return [k for k in set(keys)]
        """) == ["RL005"]

    def test_sorted_set_is_clean(self):
        assert codes("""
            def f(keys):
                for k in sorted(set(keys)):
                    print(k)
        """) == []

    def test_membership_test_is_clean(self):
        assert codes("""
            def f(k, seen):
                return k in {"a", "b"} or k in seen
        """) == []


# ---------------------------------------------------------------------------
# RL006 -- Request/Delay/Event subclass without __slots__
# ---------------------------------------------------------------------------


class TestRL006:
    def test_effect_subclass_without_slots_fires(self):
        assert codes("""
            from repro.effects import StoreRequest
            class Touch(StoreRequest):
                def __init__(self, space, key):
                    super().__init__(space, key)
        """) == ["RL006"]

    def test_transitive_subclass_fires(self):
        assert codes("""
            from repro.effects import Request
            class Mid(Request):
                __slots__ = ()
            class Leaf(Mid):
                pass
        """) == ["RL006"]

    def test_kernel_delay_subclass_fires(self):
        assert codes("""
            from repro.sim.kernel import Delay
            class JitteredDelay(Delay):
                pass
        """, module="repro.sim.fixture") == ["RL006"]

    def test_subclass_with_slots_is_clean(self):
        assert codes("""
            from repro.effects import StoreRequest
            class Touch(StoreRequest):
                __slots__ = ("extra",)
        """) == []

    def test_unrelated_class_is_clean(self):
        assert codes("""
            class Plain:
                pass
        """) == []

    def test_cross_module_subclass_resolves(self):
        # A subclass in one module of an effect defined in another.
        base = SourceModule(
            "base.py", "repro.core.basefx",
            textwrap.dedent("""
                from repro.effects import Request
                class CustomFx(Request):
                    __slots__ = ()
            """),
        )
        findings = lint_source(
            textwrap.dedent("""
                from repro.core.basefx import CustomFx
                class Slotless(CustomFx):
                    pass
            """),
            module="repro.core.userfx",
            extra_sources=[base],
        )
        assert [f.rule for f in findings] == ["RL006"]


# ---------------------------------------------------------------------------
# RL007 -- mutable default arguments
# ---------------------------------------------------------------------------


class TestRL007:
    def test_list_default_fires(self):
        assert codes("""
            def f(x, acc=[]):
                acc.append(x)
        """) == ["RL007"]

    def test_dict_call_default_fires(self):
        assert codes("""
            def f(x, table=dict()):
                table[x] = 1
        """) == ["RL007"]

    def test_kwonly_default_fires(self):
        assert codes("""
            def f(x, *, acc={}):
                acc[x] = 1
        """) == ["RL007"]

    def test_none_default_is_clean(self):
        assert codes("""
            def f(x, acc=None):
                acc = acc or []
                acc.append(x)
        """) == []


# ---------------------------------------------------------------------------
# RL008 -- dispatcher bypassed from protocol code
# ---------------------------------------------------------------------------


class TestRL008:
    def test_cluster_execute_fires(self):
        assert codes("""
            def read(cluster, op):
                return cluster.execute(op)
        """) == ["RL008"]

    def test_attribute_chain_receiver_fires(self):
        assert codes("""
            def scan(self, op):
                return self.deployment.cluster.execute_scan(op)
        """) == ["RL008"]

    def test_commit_manager_call_fires(self):
        assert codes("""
            def finish(commit_manager, tid):
                commit_manager.set_committed(tid)
        """) == ["RL008"]

    def test_manager_alias_fires(self):
        assert codes("""
            def finish(manager, tid):
                manager.set_aborted(tid)
        """) == ["RL008"]

    def test_yielded_effect_is_clean(self):
        assert codes("""
            from repro import effects
            def finish(tid):
                yield effects.ReportCommitted(tid)
        """) == []

    def test_other_receivers_and_methods_are_clean(self):
        assert codes("""
            def f(pool, manager, cluster):
                pool.execute("sql")          # not a cluster
                manager.publish_state()      # not a CM dispatch method
                return cluster.live_nodes()  # not execute/execute_scan
        """) == []

    def test_driver_packages_are_exempt(self):
        source = """
            def drive(cluster, op):
                return cluster.execute(op)
        """
        assert codes(source, module="repro.bench.simcluster") == []
        assert codes(source, module="repro.dispatch.direct") == []
        assert codes(source, module="repro.api.runner") == []

    def test_inline_suppression(self):
        assert codes("""
            def recover(manager, tid):
                manager.set_aborted(tid)  # repro-lint: ignore[RL008]
        """) == []


# ---------------------------------------------------------------------------
# RL009 -- sanitizer mutates protocol state
# ---------------------------------------------------------------------------


class TestRL009:
    def test_attribute_assignment_on_record_fires(self):
        assert codes("""
            def observe(self, record):
                record.versions = ()
        """, module="repro.san.si") == ["RL009"]

    def test_subscript_store_on_protocol_attr_fires(self):
        assert codes("""
            def observe(self, txn, key):
                txn.index_ops[0] = None
        """, module="repro.san.gcsan") == ["RL009"]

    def test_mutating_method_call_fires(self):
        assert codes("""
            def observe(self, manager, tid):
                manager.set_committed(tid)
        """, module="repro.san.si") == ["RL009"]

    def test_driving_a_transaction_fires(self):
        assert codes("""
            def observe(self, txn):
                txn.commit()
        """, module="repro.san.chain") == ["RL009"]

    def test_read_only_accessors_are_clean(self):
        assert codes("""
            def observe(self, record, snapshot, manager):
                tids = record.version_numbers()
                latest = record.latest_visible(snapshot)
                base, bits = snapshot.as_pair()
                active = manager.active_transactions()
                return tids, latest, base, bits, active
        """, module="repro.san.si") == []

    def test_own_state_and_shadow_names_are_clean(self):
        assert codes("""
            def observe(self, view, sc, key):
                self.records_checked += 1
                self.shadow.cells[key] = sc
                view.reads[key] = 3
                sc.cell_version = 4
        """, module="repro.san.si") == []

    def test_driver_modules_are_exempt(self):
        source = """
            def drive(txn, manager, tid):
                txn.commit()
                manager.set_committed(tid)
        """
        assert codes(source, module="repro.san.scenarios") == []
        assert codes(source, module="repro.san.explorer") == []
        assert codes(source, module="repro.san.__main__") == []

    def test_outside_san_is_exempt(self):
        assert codes("""
            def apply(record):
                record.versions = ()
        """, module="repro.core.transaction") == []

    def test_inline_suppression(self):
        assert codes("""
            def observe(self, record):
                record.warm_cache()  # repro-lint: ignore[RL009] read-only
        """, module="repro.san.si") == []


# ---------------------------------------------------------------------------
# RL010 -- sanitizer shadow code must not touch observability
# ---------------------------------------------------------------------------


class TestRL010:
    def test_import_repro_obs_fires(self):
        assert codes("""
            import repro.obs
        """, module="repro.san.si") == ["RL010"]

    def test_import_submodule_fires(self):
        assert codes("""
            import repro.obs.registry
        """, module="repro.san.gcsan") == ["RL010"]

    def test_from_import_fires(self):
        assert codes("""
            from repro.obs import MetricsRegistry
        """, module="repro.san.chain") == ["RL010"]

    def test_from_submodule_import_fires(self):
        assert codes("""
            from repro.obs.tracing import Tracer
        """, module="repro.san.si") == ["RL010"]

    def test_recording_into_registry_fires(self):
        assert codes("""
            def observe(self, registry):
                registry.counter("repro_san_checks").inc()
        """, module="repro.san.si") == ["RL010"]

    def test_span_and_tracer_calls_fire(self):
        assert codes("""
            def observe(self, tracer, span):
                child = tracer.start_span("check")
                span.finish()
        """, module="repro.san.gcsan") == ["RL010", "RL010"]

    def test_obs_receiver_fires(self):
        assert codes("""
            def observe(self, pn):
                pn.obs.snapshot()
        """, module="repro.san.si") == ["RL010"]

    def test_driver_modules_are_exempt(self):
        source = """
            from repro.obs import Observability
            def drive(obs):
                return obs.snapshot()
        """
        assert codes(source, module="repro.san.scenarios") == []
        assert codes(source, module="repro.san.explorer") == []
        assert codes(source, module="repro.san.__main__") == []

    def test_outside_san_is_exempt(self):
        assert codes("""
            from repro.obs import MetricsRegistry
            def snapshot(obs):
                return obs.snapshot()
        """, module="repro.bench.simcluster") == []

    def test_unrelated_imports_are_clean(self):
        assert codes("""
            from repro import effects
            import repro.errors
        """, module="repro.san.si") == []


# ---------------------------------------------------------------------------
# RL011 -- per-yield Delay() with a constant/recurring duration
# ---------------------------------------------------------------------------


class TestRL011:
    def test_constant_duration_fires(self):
        assert codes("""
            from repro.sim.kernel import Delay
            def worker():
                yield Delay(5.0)
        """, module="repro.core.fixture") == ["RL011"]

    def test_constant_via_module_attribute_fires(self):
        assert codes("""
            from repro.sim import kernel
            def worker():
                yield kernel.Delay(100)
        """, module="repro.store.fixture") == ["RL011"]

    def test_loop_invariant_name_fires(self):
        assert codes("""
            from repro.sim.kernel import Delay
            def sync_loop(interval):
                while True:
                    yield Delay(interval)
        """, module="repro.bench.fixture") == ["RL011"]

    def test_name_rebound_in_loop_is_clean(self):
        assert codes("""
            from repro.sim.kernel import Delay
            def backoff(base):
                wait = base
                while True:
                    yield Delay(wait)
                    wait = wait * 2
        """, module="repro.core.fixture") == []

    def test_computed_duration_is_clean(self):
        assert codes("""
            from repro.sim.kernel import Delay
            def charge(sim, reserve, cost):
                start, end = reserve(sim.now, cost)
                if end > sim.now:
                    yield Delay(end - sim.now)
        """, module="repro.bench.fixture") == []

    def test_name_outside_loop_is_clean(self):
        # A single yield of a variable duration is the wrapper idiom
        # (prepare_* returning a wait); only per-iteration re-yields fire.
        assert codes("""
            from repro.sim.kernel import Delay
            def wrapper(wait):
                if wait > 0:
                    yield Delay(wait)
        """, module="repro.bench.fixture") == []

    def test_delay_of_is_clean(self):
        assert codes("""
            from repro.sim.kernel import delay_of
            def sync_loop(interval):
                while True:
                    yield delay_of(interval)
        """, module="repro.core.fixture") == []

    def test_hoisted_instance_is_clean(self):
        assert codes("""
            from repro.sim.kernel import Delay
            def ticker(step, n):
                pause = Delay(step)
                for _ in range(n):
                    yield pause
        """, module="repro.bench.fixture") == []

    def test_outside_hot_path_packages_is_clean(self):
        assert codes("""
            from repro.sim.kernel import Delay
            def worker():
                yield Delay(5.0)
        """, module="repro.api.fixture") == []

    def test_suppression(self):
        assert codes("""
            from repro.sim.kernel import Delay
            def worker():
                yield Delay(5.0)  # repro-lint: ignore[RL011] fixture
        """, module="repro.core.fixture") == []


# ---------------------------------------------------------------------------
# RL012 -- isolation-protocol state touched outside repro.core.isolation
# ---------------------------------------------------------------------------


class TestRL012:
    def test_read_keys_load_fires(self):
        assert codes("""
            def snoop(txn):
                return list(txn._read_keys)
        """, module="repro.core.transaction") == ["RL012"]

    def test_read_keys_store_fires(self):
        assert codes("""
            def hijack(txn):
                txn._read_keys = {}
        """, module="repro.sql.table") == ["RL012"]

    def test_commit_window_access_fires(self):
        assert codes("""
            def peek(validator):
                return len(validator._commit_window)
        """, module="repro.api.database") == ["RL012"]

    def test_validation_horizon_access_fires(self):
        assert codes("""
            def rewind(validator):
                validator._validation_horizon = 0
        """, module="repro.bench.simcluster") == ["RL012"]

    def test_isolation_package_is_exempt(self):
        assert codes("""
            def attach(txn):
                txn._read_keys = {}
        """, module="repro.core.isolation.validated") == []

    def test_outside_repro_is_exempt(self):
        # Tests and tools address the state directly by design.
        assert codes("""
            def assert_window(validator):
                assert not validator._commit_window
        """, module="test_isolation") == []

    def test_protocol_surface_is_clean(self):
        assert codes("""
            def scan_hook(txn, keys):
                if txn.tracks_reads:
                    txn.note_scanned(keys)
        """, module="repro.sql.table") == []

    def test_suppression(self):
        assert codes("""
            def probe(txn):
                return txn._read_keys  # repro-lint: ignore[RL012] fixture
        """, module="repro.core.fixture") == []


# ---------------------------------------------------------------------------
# RL013 -- topology epoch/ownership state mutated outside repro.elastic
# ---------------------------------------------------------------------------


class TestRL013:
    def test_epoch_store_fires(self):
        assert codes("""
            def rewind(topology):
                topology.epoch = 1
        """, module="repro.store.cluster") == ["RL013"]

    def test_epoch_augassign_fires(self):
        assert codes("""
            def bump(topology):
                topology.epoch += 1
        """, module="repro.bench.simcluster") == ["RL013"]

    def test_handoffs_mutating_call_fires(self):
        assert codes("""
            def forge(topology, handoff):
                topology._handoffs.pop(handoff.partition_id)
        """, module="repro.store.management") == ["RL013"]

    def test_epoch_log_append_fires(self):
        assert codes("""
            def fake(topology):
                topology.epoch_log.append((99, "forged"))
        """, module="repro.api.admin") == ["RL013"]

    def test_epoch_read_is_clean(self):
        # Reads are the supported surface: obs gauges and benches report
        # the epoch without owning it.
        assert codes("""
            def report(topology):
                return (topology.epoch, list(topology.epoch_log))
        """, module="repro.obs.collect") == []

    def test_elastic_package_is_exempt(self):
        assert codes("""
            def _bump(self, reason):
                self.epoch += 1
                self.epoch_log.append((self.epoch, reason))
        """, module="repro.elastic.topology") == []

    def test_outside_repro_is_exempt(self):
        assert codes("""
            def reset(topology):
                topology.epoch = 1
        """, module="test_elastic") == []

    def test_suppression(self):
        assert codes("""
            def probe(topology):
                topology.epoch = 7  # repro-lint: ignore[RL013] fixture
        """, module="repro.core.fixture") == []


class TestEngine:
    def test_skip_file(self):
        assert codes("""
            # repro-lint: skip-file  (generated)
            def f(x, acc=[]):
                acc.append(x)
        """) == []

    def test_syntax_error_reported_as_rl000(self):
        assert codes("def f(:\n") == ["RL000"]

    def test_multi_rule_suppression(self):
        assert codes("""
            import time
            def f(acc=[]):  # repro-lint: ignore[RL007, RL003]
                return time.time()  # repro-lint: ignore[RL003] fixture
        """, module="repro.core.fixture") == []

    def test_suppression_requires_matching_code(self):
        assert codes("""
            def f(x, acc=[]):  # repro-lint: ignore[RL001] wrong code
                acc.append(x)
        """) == ["RL007"]

    def test_module_name_for(self):
        assert module_name_for("src/repro/core/transaction.py") == \
            "repro.core.transaction"
        assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"

    def test_baseline_filters_and_counts(self):
        source = SourceModule(
            "fx.py", "repro.core.fixture",
            "def f(x, acc=[]):\n    acc.append(x)\n",
        )
        raw = lint_sources([source])
        assert [f.rule for f in raw.findings] == ["RL007"]
        baseline = Baseline.from_findings(raw.findings)
        filtered = lint_sources([source], baseline=baseline)
        assert filtered.findings == []
        assert filtered.baselined == 1

    def test_baseline_roundtrip_is_line_number_independent(self, tmp_path):
        path = tmp_path / "baseline.json"
        source = SourceModule(
            "fx.py", "repro.core.fixture",
            "def f(x, acc=[]):\n    acc.append(x)\n",
        )
        raw = lint_sources([source])
        Baseline.from_findings(raw.findings).save(str(path))
        moved = SourceModule(
            "fx.py", "repro.core.fixture",
            "import os\n\n\ndef f(x, acc=[]):\n    acc.append(x)\n",
        )
        result = lint_sources([moved], baseline=Baseline.load(str(path)))
        assert result.findings == []
        assert result.baselined == 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def _write_fixture(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        bad = pkg / "bad.py"
        bad.write_text("def f(x, acc=[]):\n    acc.append(x)\n")
        return bad

    def test_findings_exit_1_and_human_output(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = self._write_fixture(tmp_path)
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RL007" in out and "bad.py" in out

    def test_clean_exit_0(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        good = tmp_path / "good.py"
        good.write_text("def f(x):\n    return x\n")
        assert lint_main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = self._write_fixture(tmp_path)
        assert lint_main(["--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "RL007"
        assert payload["files_checked"] == 1

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = self._write_fixture(tmp_path)
        assert lint_main(["--write-baseline", str(bad)]) == 0
        assert (tmp_path / ".repro-lint-baseline.json").exists()
        assert lint_main([str(bad)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_explain_known_rule(self, capsys):
        assert lint_main(["--explain", "RL001"]) == 0
        out = capsys.readouterr().out
        assert "RL001" in out and "yield" in out

    def test_explain_every_rule_has_docs(self, capsys):
        from repro.lint import RULES_BY_CODE
        for code in RULES_BY_CODE:
            assert lint_main(["--explain", code]) == 0
            out = capsys.readouterr().out
            assert code in out
            assert len(out.splitlines()) > 3  # title + real prose

    def test_explain_unknown_rule_exit_2(self, capsys):
        assert lint_main(["--explain", "RL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exit_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert lint_main(["does-not-exist"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL007"):
            assert code in out


# ---------------------------------------------------------------------------
# The shipped tree and the seeded-mutation guard
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_repro_lint_src_exits_0(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_deleting_yield_before_putifversion_trips_rl001(self):
        real = TRANSACTION_PY.read_text()
        mutated = real.replace(
            "ok, _ = yield effects.PutIfVersion(",
            "ok, _ = effects.PutIfVersion(",
        )
        assert mutated != real, "mutation site vanished; update the test"
        found = lint_source(mutated, module="repro.core.transaction")
        assert "RL001" in [f.rule for f in found]

    def test_deleting_yield_before_report_committed_trips_rl001(self):
        # The commit pipeline (and its ReportCommitted yields) lives in
        # the isolation strategy layer now.
        real = ISOLATION_BASE_PY.read_text()
        mutated = real.replace(
            "yield effects.ReportCommitted(txn.tid)",
            "effects.ReportCommitted(txn.tid)",
        )
        assert mutated != real
        found = lint_source(mutated, module="repro.core.isolation.base")
        assert [f.rule for f in found].count("RL001") >= 1

    def test_deleting_yield_from_trips_rl002(self):
        real = TRANSACTION_PY.read_text()
        mutated = real.replace(
            "yield from self._fetch(to_fetch)", "self._fetch(to_fetch)"
        )
        assert mutated != real
        found = lint_source(mutated, module="repro.core.transaction")
        assert "RL002" in [f.rule for f in found]

    def test_unmutated_transaction_is_clean(self):
        assert lint_source(
            TRANSACTION_PY.read_text(), module="repro.core.transaction"
        ) == []

    def test_unmutated_isolation_base_is_clean(self):
        assert lint_source(
            ISOLATION_BASE_PY.read_text(), module="repro.core.isolation.base"
        ) == []
