"""Tests for the bulk loader, the effect vocabulary, and table printing."""

import pytest

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.bench.tables import format_table
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.core.spaces import META_SPACE, rid_counter_key
from repro.sql.schema import Catalog, Column
from repro.sql.table import IndexManager, Table
from repro.sql.types import ColumnType
from repro.store.cluster import StorageCluster
from repro.workloads.loader import BulkLoader


@pytest.fixture
def env():
    cluster = StorageCluster(n_nodes=2)
    catalog = Catalog()
    catalog.define_table(
        "users",
        [
            Column("id", ColumnType.INT, nullable=False),
            Column("name", ColumnType.TEXT),
            Column("age", ColumnType.INT),
        ],
        ["id"],
    )
    catalog.define_index("users_age", "users", ["age"])
    indexes = IndexManager()
    loader = BulkLoader(catalog, indexes, batch_size=16)
    return cluster, catalog, indexes, loader


def load(cluster, loader, rows):
    return effects.run_direct(loader.load_table("users", rows), Router(cluster))


class TestBulkLoader:
    def test_rows_visible_to_transactions(self, env):
        cluster, catalog, indexes, loader = env
        count = load(cluster, loader, [
            {"id": i, "name": f"user-{i}", "age": i % 40} for i in range(100)
        ])
        assert count == 100
        cm = CommitManager(0, cluster.execute)
        pn = ProcessingNode(0)
        runner = DirectRunner(Router(cluster, cm, pn_id=0))
        txn = runner.run(pn.begin())
        table = Table(catalog.table("users"), txn, indexes)
        found = runner.run(table.get((42,)))
        assert found is not None and found[1][1] == "user-42"

    def test_secondary_index_built(self, env):
        cluster, catalog, indexes, loader = env
        load(cluster, loader, [
            {"id": i, "name": "x", "age": 30 if i < 5 else 50}
            for i in range(20)
        ])
        cm = CommitManager(0, cluster.execute)
        pn = ProcessingNode(0)
        runner = DirectRunner(Router(cluster, cm, pn_id=0))
        txn = runner.run(pn.begin())
        table = Table(catalog.table("users"), txn, indexes)
        index = catalog.indexes["users_age"]
        matches = runner.run(table.lookup(index, (30,)))
        assert len(matches) == 5

    def test_rid_counter_advanced(self, env):
        cluster, catalog, indexes, loader = env
        load(cluster, loader, [{"id": i, "name": "x"} for i in range(7)])
        value, _ = cluster.execute(
            effects.Get(META_SPACE, rid_counter_key(catalog.table("users").table_id))
        )
        assert value == 7
        # new inserts get fresh rids beyond the loaded population
        cm = CommitManager(0, cluster.execute)
        pn = ProcessingNode(0)
        runner = DirectRunner(Router(cluster, cm, pn_id=0))
        txn = runner.run(pn.begin())
        table = Table(catalog.table("users"), txn, indexes)
        rid = runner.run(table.insert({"id": 100, "name": "new"}))
        assert rid > 7

    def test_loaded_versions_visible_to_every_snapshot(self, env):
        cluster, catalog, indexes, loader = env
        load(cluster, loader, [{"id": 1, "name": "x"}])
        from repro.core.spaces import DATA_SPACE, data_key

        record, _ = cluster.execute(
            effects.Get(DATA_SPACE, data_key(catalog.table("users").table_id, 1))
        )
        assert record.versions[0].tid == 0  # version 0: visible to all

    def test_empty_table_load(self, env):
        cluster, catalog, indexes, loader = env
        assert load(cluster, loader, []) == 0


class TestEffects:
    def test_multi_get_builds_batch(self):
        batch = effects.multi_get("data", [1, 2, 3])
        assert isinstance(batch, effects.Batch)
        assert all(isinstance(op, effects.Get) for op in batch.ops)
        assert [op.key for op in batch.ops] == [1, 2, 3]

    def test_scan_bounds(self):
        scan = effects.Scan("data", 1, 10, limit=5)
        assert scan.start == 1 and scan.end == 10 and scan.limit == 5

    def test_run_direct_returns_value(self, cluster):
        def proto():
            yield effects.Put("data", "k", "v")
            value, _version = yield effects.Get("data", "k")
            return value

        assert effects.run_direct(proto(), Router(cluster)) == "v"

    def test_router_rejects_unknown(self, cluster):
        router = Router(cluster)
        with pytest.raises(TypeError):
            router.execute("not a request")

    def test_router_without_cm_rejects_cm_requests(self, cluster):
        router = Router(cluster)
        with pytest.raises(RuntimeError):
            router.execute(effects.StartTransaction())

    def test_compute_and_sleep_are_noops_in_direct_mode(self, cluster):
        router = Router(cluster)
        assert router.execute(effects.Compute(100.0)) is None
        assert router.execute(effects.Sleep(100.0)) is None


class TestTablePrinter:
    def test_alignment_and_formatting(self):
        text = format_table(
            ["Name", "Value"],
            [("x", 1234567.0), ("longer-name", 0.5)],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "1,234,567" in text
        assert "0.50" in text
        # header separator matches widths
        assert set(lines[2]) <= {"-", " "}

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text
