"""Tests for the management node: failure detection and fail-over."""

import pytest

from repro import effects
from repro.errors import InvalidState, NodeUnavailable
from repro.store.cluster import StorageCluster
from repro.store.management import FailureDetector, ManagementNode


class TestFailureDetector:
    def test_fresh_heartbeats_not_suspected(self):
        detector = FailureDetector(timeout_us=1000.0)
        detector.heartbeat(0, now=0.0)
        assert detector.suspects(now=500.0) == []

    def test_stale_heartbeat_suspected(self):
        detector = FailureDetector(timeout_us=1000.0)
        detector.heartbeat(0, now=0.0)
        detector.heartbeat(1, now=900.0)
        assert detector.suspects(now=1500.0) == [0]

    def test_forget(self):
        detector = FailureDetector(timeout_us=10.0)
        detector.heartbeat(0, now=0.0)
        detector.forget(0)
        assert detector.suspects(now=100.0) == []


def _fill(cluster, n=200):
    for i in range(n):
        cluster.execute(effects.Put("data", i, f"value-{i}"))


class TestFailOver:
    def test_data_survives_node_failure_with_rf2(self):
        cluster = StorageCluster(n_nodes=3, replication_factor=2)
        management = ManagementNode(cluster)
        _fill(cluster)
        management.handle_node_failure(0)
        for i in range(200):
            value, _version = cluster.execute(effects.Get("data", i))
            assert value == f"value-{i}"

    def test_replication_level_restored(self):
        cluster = StorageCluster(n_nodes=4, replication_factor=2)
        management = ManagementNode(cluster)
        _fill(cluster)
        management.handle_node_failure(1)
        for pid in range(cluster.partitioner.n_partitions):
            replicas = cluster.partition_map.replicas_of(pid)
            assert len(replicas) == 2
            assert 1 not in replicas
            # the copies must actually exist on the hosts
            for node_id in replicas:
                assert pid in cluster.nodes[node_id].partitions

    def test_replicas_byte_identical_after_restore(self):
        cluster = StorageCluster(n_nodes=4, replication_factor=3)
        management = ManagementNode(cluster)
        _fill(cluster, 100)
        management.handle_node_failure(2)
        for pid in range(cluster.partitioner.n_partitions):
            replicas = cluster.partition_map.replicas_of(pid)
            reference = None
            for node_id in replicas:
                cells = cluster.nodes[node_id].partition(pid).space("data")
                snapshot = {k: (c.value, c.version) for k, c in cells.items()}
                if reference is None:
                    reference = snapshot
                else:
                    assert snapshot == reference

    def test_failure_without_replication_loses_data(self):
        cluster = StorageCluster(n_nodes=3, replication_factor=1)
        management = ManagementNode(cluster)
        _fill(cluster, 50)
        with pytest.raises(NodeUnavailable):
            management.handle_node_failure(0)

    def test_writes_after_failover_replicate_to_new_host(self):
        cluster = StorageCluster(n_nodes=4, replication_factor=2)
        management = ManagementNode(cluster)
        _fill(cluster, 50)
        management.handle_node_failure(0)
        cluster.execute(effects.Put("data", "fresh", "x"))
        pid = cluster.partition_of("fresh")
        for node_id in cluster.partition_map.replicas_of(pid):
            cells = cluster.nodes[node_id].partition(pid).space("data")
            assert cells["fresh"].value == "x"

    def test_two_sequential_failures(self):
        cluster = StorageCluster(n_nodes=5, replication_factor=3)
        management = ManagementNode(cluster)
        _fill(cluster, 100)
        management.handle_node_failure(0)
        management.handle_node_failure(1)
        for i in range(100):
            value, _ = cluster.execute(effects.Get("data", i))
            assert value == f"value-{i}"
        assert management.recoveries_completed == 2

    def test_degraded_when_not_enough_nodes(self):
        cluster = StorageCluster(n_nodes=3, replication_factor=3)
        management = ManagementNode(cluster)
        _fill(cluster, 20)
        management.handle_node_failure(0)
        # Only two nodes left: RF3 cannot be restored, but data serves.
        for pid in range(cluster.partitioner.n_partitions):
            assert len(cluster.partition_map.replicas_of(pid)) == 2
        value, _ = cluster.execute(effects.Get("data", 0))
        assert value == "value-0"

    def test_check_heartbeats_triggers_failover(self):
        cluster = StorageCluster(n_nodes=3, replication_factor=2)
        management = ManagementNode(cluster)
        _fill(cluster, 20)
        management.detector.heartbeat(0, now=0.0)
        management.detector.heartbeat(1, now=0.0)
        management.detector.heartbeat(2, now=999_000.0)
        cluster.nodes[0].crash()
        cluster.nodes[1].alive = True  # 1 is healthy but heartbeat stale:
        # the detector is only eventually perfect; it may fail over a slow
        # node too, which must still be safe.
        recovered = management.check_heartbeats(now=1_000_000.0)
        assert set(recovered) == {0, 1}
        for i in range(20):
            value, _ = cluster.execute(effects.Get("data", i))
            assert value == f"value-{i}"
