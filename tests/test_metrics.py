"""Tests for benchmark metrics and network profiles."""

import pytest

from repro.bench.metrics import LatencyStats, TxnMetrics
from repro.errors import InvalidState
from repro.net.profiles import (
    ETHERNET_10G,
    INFINIBAND_QDR,
    profile_by_name,
)


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats([])
        assert stats.count == 0
        assert stats.mean_us == 0.0

    def test_mean_std(self):
        stats = LatencyStats([10.0, 20.0, 30.0])
        assert stats.mean_us == 20.0
        assert stats.std_us == pytest.approx(8.1649, rel=1e-3)

    def test_percentiles(self):
        stats = LatencyStats(list(range(1, 1001)))
        assert stats.p50_us == pytest.approx(500, abs=2)
        assert stats.p99_us == pytest.approx(990, abs=2)
        assert stats.p999_us == pytest.approx(999, abs=2)
        assert stats.max_us == 1000

    def test_percentiles_interpolate_exactly(self):
        # rank = fraction * (n - 1); value interpolated between the two
        # closest order statistics (numpy's default definition).
        stats = LatencyStats([1.0, 2.0])
        assert stats.p50_us == pytest.approx(1.5)
        assert stats.p99_us == pytest.approx(1.99)
        assert stats.p999_us == pytest.approx(1.999)

        stats = LatencyStats(list(range(1, 102)))  # 1..101, n=101
        assert stats.p50_us == pytest.approx(51.0)
        assert stats.p99_us == pytest.approx(100.0)
        assert stats.p999_us == pytest.approx(100.9)

        stats = LatencyStats([10.0, 20.0, 30.0, 40.0])  # n=4
        assert stats.p50_us == pytest.approx(25.0)
        assert stats.p99_us == pytest.approx(39.7)

    def test_percentiles_single_sample(self):
        stats = LatencyStats([42.0])
        assert stats.p50_us == 42.0
        assert stats.p99_us == 42.0
        assert stats.p999_us == 42.0

    def test_ms_views(self):
        stats = LatencyStats([5000.0])
        assert stats.mean_ms == 5.0


class TestTxnMetrics:
    def test_tpmc_counts_only_committed_new_orders(self):
        metrics = TxnMetrics()
        for _ in range(10):
            metrics.record("new_order", "committed", 100.0)
        for _ in range(5):
            metrics.record("new_order", "conflict", 100.0)
        metrics.record("payment", "committed", 50.0)
        metrics.measured_time_us = 60e6  # one minute
        assert metrics.tpmc == 10.0
        assert metrics.tps == pytest.approx(11 / 60.0)

    def test_abort_rate_over_all_finished(self):
        metrics = TxnMetrics()
        metrics.record("payment", "committed", 1.0)
        metrics.record("payment", "conflict", 1.0)
        metrics.record("new_order", "user_abort", 1.0)
        assert metrics.abort_rate == pytest.approx(1 / 3)

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            TxnMetrics().record("x", "exploded", 1.0)

    def test_latency_per_type_and_merged(self):
        metrics = TxnMetrics()
        metrics.record("a", "committed", 10.0)
        metrics.record("b", "committed", 30.0)
        assert metrics.latency("a").mean_us == 10.0
        assert metrics.latency().mean_us == 20.0

    def test_merge(self):
        a = TxnMetrics()
        a.record("x", "committed", 1.0)
        b = TxnMetrics()
        b.record("x", "committed", 3.0)
        b.record("x", "conflict", 0.0)
        a.merge(b)
        assert a.committed["x"] == 2
        assert a.conflicts["x"] == 1
        assert a.latency("x").count == 2

    def test_zero_time_throughput(self):
        assert TxnMetrics().tpmc == 0.0
        assert TxnMetrics().tps == 0.0

    def test_summary_is_readable(self):
        metrics = TxnMetrics()
        metrics.record("new_order", "committed", 1000.0)
        metrics.measured_time_us = 1e6
        summary = metrics.summary()
        assert "tpmc" in summary and "abort_rate" in summary


class TestNetworkProfiles:
    def test_lookup_by_name_and_alias(self):
        assert profile_by_name("infiniband") is INFINIBAND_QDR
        assert profile_by_name("IB") is INFINIBAND_QDR
        assert profile_by_name("10gbe") is ETHERNET_10G

    def test_unknown_profile(self):
        with pytest.raises(InvalidState):
            profile_by_name("carrier-pigeon")

    def test_infiniband_much_faster_for_small_messages(self):
        assert ETHERNET_10G.round_trip() > 6 * INFINIBAND_QDR.round_trip()

    def test_bandwidth_term_grows_with_size(self):
        small = INFINIBAND_QDR.one_way(64)
        large = INFINIBAND_QDR.one_way(1_000_000)
        assert large > small + 200

    def test_ethernet_charges_cpu_per_message(self):
        assert ETHERNET_10G.client_cpu_per_msg_us > 0
        assert INFINIBAND_QDR.client_cpu_per_msg_us < 1.0
