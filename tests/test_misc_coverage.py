"""Edge cases across modules: commit paths, rid ranges, CLI, profiles."""

import pytest

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.core.spaces import data_key
from repro.errors import TransactionAborted
from repro.store.cluster import StorageCluster


@pytest.fixture
def env(cluster):
    cm = CommitManager(0, cluster.execute, tid_range_size=16)
    pn = ProcessingNode(0, rid_range_size=4)
    runner = DirectRunner(Router(cluster, cm, pn_id=0))
    return cluster, cm, pn, runner


class TestRidAllocation:
    def test_ranges_are_contiguous_per_refill(self, env):
        _c, _cm, pn, runner = env
        rids = [runner.run(pn.allocate_rid(1)) for _ in range(10)]
        assert rids == list(range(1, 11))

    def test_independent_per_table(self, env):
        _c, _cm, pn, runner = env
        a = runner.run(pn.allocate_rid(1))
        b = runner.run(pn.allocate_rid(2))
        assert a == 1 and b == 1

    def test_two_pns_never_collide(self, env):
        cluster, cm, pn, runner = env
        other_pn = ProcessingNode(1, rid_range_size=4)
        other_runner = DirectRunner(Router(cluster, cm, pn_id=1))
        mine = {runner.run(pn.allocate_rid(1)) for _ in range(12)}
        theirs = {other_runner.run(other_pn.allocate_rid(1)) for _ in range(12)}
        assert mine.isdisjoint(theirs)


class TestRunTransactionRetry:
    def test_retries_until_success(self, env):
        cluster, cm, pn, runner = env
        key = data_key(1, 1)

        def init(txn):
            txn.insert(key, (0,))
            return None
            yield

        runner.run(pn.run_transaction(init))

        # Sabotage: the first attempt gets invalidated by a concurrent
        # commit between its read and its commit.
        state = {"sabotaged": False}

        def logic(txn):
            value = yield from txn.read(key)
            if not state["sabotaged"]:
                state["sabotaged"] = True

                def interloper(other):
                    inner = yield from other.read(key)
                    yield from other.update(key, (inner[0] + 100,))

                yield from pn.run_transaction(interloper)
            yield from txn.update(key, (value[0] + 1,))

        result, attempts = runner.run(pn.run_transaction(logic, max_attempts=3))
        assert attempts == 2

    def test_raises_after_max_attempts(self, env):
        cluster, cm, pn, runner = env
        key = data_key(1, 2)

        def init(txn):
            txn.insert(key, (0,))
            return None
            yield

        runner.run(pn.run_transaction(init))

        def always_conflicting(txn):
            value = yield from txn.read(key)

            def interloper(other):
                inner = yield from other.read(key)
                yield from other.update(key, (inner[0] + 1,))

            yield from pn.run_transaction(interloper)
            yield from txn.update(key, (value[0] - 1,))

        with pytest.raises(TransactionAborted):
            runner.run(pn.run_transaction(always_conflicting, max_attempts=2))


class TestClusterScanLimit:
    def test_global_limit_after_merge(self, cluster):
        for i in range(100):
            cluster.execute(effects.Put("data", i, i))
        rows = cluster.execute(effects.Scan("data", None, None, limit=10))
        assert [key for key, _v, _c in rows] == list(range(10))


class TestBenchCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table3" in out

    def test_unknown_experiment(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["does-not-exist"])

    def test_table1_runs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["table1"]) == 0
        assert "Oracle RAC" in capsys.readouterr().out


class TestBenchProfiles:
    def test_default_profile(self, monkeypatch):
        from repro.bench.experiments import bench_profile

        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert bench_profile().name == "quick"

    def test_env_selection(self, monkeypatch):
        from repro.bench.experiments import bench_profile

        monkeypatch.setenv("REPRO_BENCH_PROFILE", "smoke")
        assert bench_profile().name == "smoke"

    def test_unknown_profile(self, monkeypatch):
        from repro.bench.experiments import bench_profile

        monkeypatch.setenv("REPRO_BENCH_PROFILE", "galactic")
        with pytest.raises(ValueError):
            bench_profile()

    def test_scales_are_ordered(self):
        from repro.bench.experiments import PROFILES

        assert (PROFILES["smoke"].warehouses
                < PROFILES["quick"].warehouses
                < PROFILES["full"].warehouses)


class TestCommitEdgeCases:
    def test_commit_after_user_abort_rejected(self, env):
        _c, _cm, pn, runner = env
        from repro.errors import InvalidState

        txn = runner.run(pn.begin())
        runner.run(txn.abort())
        with pytest.raises(InvalidState):
            runner.run(txn.commit())

    def test_duplicate_index_key_rolls_back_data(self, env):
        """A commit that fails on a unique-index insert must leave no
        trace of its data writes."""
        cluster, _cm, pn, runner = env
        from repro.index.btree import DistributedBTree

        tree = DistributedBTree(index_id=9, max_entries=8)
        runner.run(tree.create())
        runner.run(tree.insert("taken", 99, unique=True))

        txn = runner.run(pn.begin())
        key = data_key(3, 1)
        txn.insert(key, ("payload",))
        txn.index_ops.append(("insert", tree, "taken", 1, True))
        with pytest.raises(TransactionAborted):
            runner.run(txn.commit())
        record, _ = cluster.execute(effects.Get("data", key))
        assert record is None

    def test_write_after_commit_rejected(self, env):
        _c, _cm, pn, runner = env
        from repro.errors import InvalidState

        txn = runner.run(pn.begin())
        runner.run(txn.commit())
        with pytest.raises(InvalidState):
            txn.insert(data_key(1, 5), ("x",))
