"""Tests for repro.obs: registry, tracer, exporters, and determinism."""

import json

import pytest

from repro.bench.config import TellConfig
from repro.bench.simcluster import SimulatedTell
from repro.obs import (Observability, obs_enabled, phase_table_rows, to_json,
                       to_prometheus, validate_snapshot)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import PhaseBreakdown, Tracer
from repro.workloads.tpcc.params import TpccScale


def tiny_config(**overrides):
    defaults = dict(
        processing_nodes=1,
        storage_nodes=2,
        threads_per_pn=4,
        scale=TpccScale.tiny(2),
        duration_us=60_000.0,
        warmup_us=10_000.0,
        seed=5,
        observability=True,
    )
    defaults.update(overrides)
    return TellConfig(**defaults)


class TestRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", "operations")
        counter.inc(node="0")
        counter.inc(2, node="0")
        counter.inc(node="1")
        assert counter.value(node="0") == 3
        assert counter.value(node="1") == 1

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("ops")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_and_overwrites(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4.0)
        gauge.set(2.5)
        assert gauge.value() == 2.5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_log2_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (1.0, 3.0, 100.0):
            histogram.observe(value)
        snap = registry.snapshot()["histograms"]["lat"]
        assert snap["count"] == 3
        assert snap["sum"] == 104.0
        assert snap["max"] == 100.0
        # 1.0 -> bucket 0, 3.0 -> bucket 2 (<=4), 100.0 -> bucket 7 (<=128)
        assert snap["buckets"] == {"0": 1, "2": 1, "7": 1}

    def test_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"value": 0}
        registry.register_collector(
            lambda reg: reg.gauge("live").set(state["value"]))
        state["value"] = 7
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["live"] == 7.0

    def test_series_keys_are_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(b="2", a="1")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["ops{a=1,b=2}"]


class TestTracer:
    def test_span_tree_and_phase_breakdown(self):
        clock = iter(range(0, 1000, 10))
        tracer = Tracer(clock=lambda: float(next(clock)))
        root = tracer.start_span("txn")
        root.attrs["txn"] = "new_order"
        child = root.child("read")
        child.finish()
        root.attrs["outcome"] = "committed"
        root.finish()
        rows = tracer.phases.rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["txn"] == "new_order"
        assert row["count"] == 1
        assert "read" in row["phases"]
        assert "other" in row["phases"]
        assert row["outcomes"] == {"committed": 1}

    def test_open_children_closed_at_root_finish(self):
        clock = iter(range(0, 1000, 10))
        tracer = Tracer(clock=lambda: float(next(clock)))
        root = tracer.start_span("txn")
        child = root.child("write")  # never finished explicitly
        root.finish()
        assert child.end_us == root.end_us

    def test_root_cap_drops_raw_spans_not_aggregates(self):
        clock = iter(range(0, 100000, 1))
        tracer = Tracer(clock=lambda: float(next(clock)), max_roots=3)
        for _ in range(5):
            tracer.start_span("txn").finish()
        payload = tracer.to_dict()
        assert payload["finished_roots"] == 5
        assert payload["kept"] == 3
        assert payload["dropped"] == 2

    def test_span_ids_are_deterministic(self):
        def make():
            clock = iter(range(0, 100, 1))
            tracer = Tracer(clock=lambda: float(next(clock)))
            for _ in range(3):
                span = tracer.start_span("txn")
                span.child("read").finish()
                span.finish()
            return tracer.to_dict()

        assert make() == make()

    def test_breakdown_ignores_unfinished_roots(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.start_span("txn")  # abandoned
        assert PhaseBreakdown().rows() == []
        assert tracer.phases.rows() == []


class TestExporters:
    def _snapshot(self):
        hub = Observability()
        hub.registry.counter("ops", "operations").inc(5, node="0")
        hub.registry.gauge("depth").set(2.0)
        hub.registry.histogram("lat").observe(3.0)
        span = hub.tracer.start_span("txn")
        span.attrs["outcome"] = "committed"
        span.child("commit").finish()
        span.finish()
        return hub.snapshot()

    def test_snapshot_validates(self):
        assert validate_snapshot(self._snapshot()) == []

    def test_validation_catches_problems(self):
        snapshot = self._snapshot()
        snapshot["schema"] = "bogus/9"
        del snapshot["gauges"]
        problems = validate_snapshot(snapshot)
        assert len(problems) >= 2

    def test_json_round_trip_is_stable(self):
        snapshot = self._snapshot()
        assert json.loads(to_json(snapshot)) == snapshot

    def test_prometheus_text_format(self):
        text = to_prometheus(self._snapshot())
        assert 'ops{node="0"} 5' in text
        assert "# TYPE ops counter" in text
        assert "# TYPE lat histogram" in text
        assert 'le="+Inf"' in text
        assert "lat_count 1" in text

    def test_phase_table_rows(self):
        rows = phase_table_rows(self._snapshot())
        assert len(rows) == 1
        assert rows[0][0] == "txn"
        assert rows[0][1] == 1  # count


class TestEnvFlag:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert not obs_enabled()

    def test_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not obs_enabled()

    def test_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        assert obs_enabled()


class TestSimulatedObservability:
    def _run(self, **overrides):
        deployment = SimulatedTell(tiny_config(**overrides))
        deployment.load()
        metrics = deployment.run()
        return metrics

    def test_snapshot_emitted_and_valid(self):
        metrics = self._run()
        snapshot = metrics.obs_snapshot
        assert snapshot is not None
        assert validate_snapshot(snapshot) == []
        assert snapshot["meta"]["clock"] == "sim"
        rows = snapshot["phases"]["rows"]
        assert rows, "expected a populated phase breakdown"
        for row in rows:
            assert "snapshot" in row["phases"]
            assert "commit" in row["phases"]

    def test_identical_snapshots_across_same_seed_runs(self):
        first = self._run().obs_snapshot
        second = self._run().obs_snapshot
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_digest_unchanged_by_observability(self):
        with_obs = self._run()
        without = self._run(observability=False)
        assert without.obs_snapshot is None
        assert with_obs.digest() == without.digest()

    def test_disabled_run_has_no_tracer_attached(self):
        deployment = SimulatedTell(tiny_config(observability=False))
        assert deployment.obs is None
        deployment.load()
        deployment.run()
        for pn, _pool, _cm, _indexes in deployment._pn_handles:
            assert pn.obs is None
