"""Tests for storage-side operator push-down (Section 5.2)."""

import pytest

from repro import effects
from repro.api import Database
from repro.core.record import TOMBSTONE, Version, VersionedRecord
from repro.core.snapshot import SnapshotDescriptor
from repro.errors import InvalidState
from repro.store.cluster import StorageCluster
from repro.store.pushdown import Projection, ScanFilter


class TestScanFilter:
    def test_matches_conjunction(self):
        scan_filter = ScanFilter([(0, ">=", 10), (1, "=", "a")])
        assert scan_filter.matches((10, "a"))
        assert not scan_filter.matches((9, "a"))
        assert not scan_filter.matches((10, "b"))

    def test_null_never_matches(self):
        scan_filter = ScanFilter([(0, "=", None)])
        assert not scan_filter.matches((None,))
        assert not scan_filter.matches((1,))

    def test_empty_filter_matches_everything(self):
        assert ScanFilter([]).matches((1, 2, 3))

    def test_unknown_operator_rejected(self):
        with pytest.raises(InvalidState):
            ScanFilter([(0, "~", 1)])

    def test_all_operators(self):
        row = (5,)
        for op, expected in (("=", False), ("!=", True), ("<", True),
                             ("<=", True), (">", False), (">=", False)):
            assert ScanFilter([(0, op, 7)]).matches(row) is expected


class TestProjection:
    def test_selects_positions(self):
        assert Projection([2, 0]).apply(("a", "b", "c")) == ("c", "a")

    def test_none_is_identity(self):
        assert Projection(None).apply(("a", "b")) == ("a", "b")


class TestStoragePushdown:
    def seed(self, cluster):
        snapshot = SnapshotDescriptor(10, 0)
        for i in range(20):
            record = VersionedRecord.initial(1, (i, f"name-{i}", i * 10))
            cluster.execute(effects.Put("data", (1, i), record))
        # one record with a newer (invisible) version and one deleted
        visible = VersionedRecord(
            [Version(1, (100, "old", 0)), Version(99, (100, "new", 0))]
        )
        cluster.execute(effects.Put("data", (1, 100), visible))
        deleted = VersionedRecord(
            [Version(1, (200, "gone", 0)), Version(2, TOMBSTONE)]
        )
        cluster.execute(effects.Put("data", (1, 200), deleted))
        return snapshot

    def test_snapshot_scan_resolves_versions(self, cluster):
        snapshot = self.seed(cluster)
        rows = cluster.execute(
            effects.Scan("data", (1,), (2,), snapshot=snapshot)
        )
        payloads = {key[1]: value for key, value, _v in rows}
        assert payloads[100][1] == "old"     # invisible version skipped
        assert 200 not in payloads           # visible tombstone skipped
        assert len(payloads) == 21

    def test_filter_applied_at_node(self, cluster):
        snapshot = self.seed(cluster)
        rows = cluster.execute(effects.Scan(
            "data", (1,), (2,), snapshot=snapshot,
            scan_filter=ScanFilter([(2, ">=", 150)]),
        ))
        values = sorted(value[0] for _k, value, _v in rows)
        assert values == [15, 16, 17, 18, 19]

    def test_projection_trims_rows(self, cluster):
        snapshot = self.seed(cluster)
        rows = cluster.execute(effects.Scan(
            "data", (1,), (2,), snapshot=snapshot,
            scan_filter=ScanFilter([(0, "<", 3)]),
            projection=Projection([1]),
        ))
        assert sorted(value for _k, (value,), _v in rows) == [
            "name-0", "name-1", "name-2"
        ]

    def test_raw_scan_unchanged(self, cluster):
        self.seed(cluster)
        rows = cluster.execute(effects.Scan("data", (1,), (2,)))
        assert all(isinstance(value, VersionedRecord) for _k, value, _v in rows)


class TestSqlIntegration:
    @pytest.fixture
    def session(self):
        db = Database(storage_nodes=2)
        session = db.session()
        session.execute(
            "CREATE TABLE m (id INT PRIMARY KEY, grp TEXT, v INT)"
        )
        session.execute(
            "INSERT INTO m VALUES " + ", ".join(
                f"({i}, '{'even' if i % 2 == 0 else 'odd'}', {i})"
                for i in range(50)
            )
        )
        return session

    def test_full_scan_query_uses_pushdown(self, session):
        # grp is unindexed -> scan path with a pushed filter.
        rows = session.query(
            "SELECT COUNT(*) AS n FROM m WHERE grp = 'even' AND v >= 10"
        )
        assert rows == [{"n": 20}]

    def test_pushdown_respects_transaction_writes(self, session):
        session.execute("BEGIN")
        session.execute("INSERT INTO m VALUES (100, 'even', 100)")
        session.execute("UPDATE m SET grp = 'odd' WHERE id = 0")
        rows = session.query("SELECT COUNT(*) AS n FROM m WHERE grp = 'even'")
        assert rows == [{"n": 25}]  # +1 insert, -1 update
        session.execute("ROLLBACK")

    def test_pushdown_snapshot_stability(self, session):
        from repro.sql.session import Session

        session.execute("BEGIN")
        before = session.query(
            "SELECT COUNT(*) AS n FROM m WHERE grp = 'odd'"
        )[0]["n"]
        # another session deletes odd rows
        db_runner = session.runner
        other = Session(
            __import__("repro.core.processing_node", fromlist=["ProcessingNode"]).ProcessingNode(55),
            type(db_runner)(type(db_runner.router)(
                db_runner.router.cluster, db_runner.router.commit_manager, 55
            )),
        )
        other.execute("DELETE FROM m WHERE grp = 'odd'")
        after = session.query(
            "SELECT COUNT(*) AS n FROM m WHERE grp = 'odd'"
        )[0]["n"]
        assert after == before  # scan sees the pinned snapshot
        session.execute("COMMIT")
        assert session.query(
            "SELECT COUNT(*) AS n FROM m WHERE grp = 'odd'"
        )[0]["n"] == 0

    def test_pushdown_reduces_shipped_bytes_in_simulation(self):
        """End-to-end: a selective analytic scan ships far fewer bytes
        with storage-side filtering."""
        from repro.bench.config import TellConfig
        from repro.bench.simcluster import SimulatedTell, CorePool
        from repro.workloads.tpcc.params import TpccScale

        config = TellConfig(processing_nodes=1, storage_nodes=3,
                            scale=TpccScale.tiny(2))
        deployment = SimulatedTell(config)
        deployment.load()
        pn, pool, cm_index, indexes = deployment._make_pn(0)
        from repro.sql.table import Table

        def analytic(pushdown):
            def script():
                txn = yield from pn.begin()
                table = Table(
                    deployment.catalog.table("orderline"), txn, indexes
                )
                scan_filter = (
                    table.make_filter([("ol_amount", ">=", 9000.0)])
                    if pushdown else None
                )
                rows = yield from table.scan(scan_filter)
                yield from txn.commit()
                return rows

            before = deployment.fabric.stats.bytes_sent
            process = deployment.sim.spawn(
                deployment._drive(pool, cm_index, script())
            )
            rows = deployment.sim.run_until_complete(process)
            return rows, deployment.fabric.stats.bytes_sent - before

        filtered_rows, _ = analytic(True)
        full_rows, _ = analytic(False)
        # Same predicate evaluated client-side gives the same matches.
        amount_pos = deployment.catalog.table("orderline").position("ol_amount")
        client_side = [r for r in full_rows if r[1][amount_pos] >= 9000.0]
        assert sorted(r[0] for r in filtered_rows) == sorted(
            r[0] for r in client_side
        )
        assert len(filtered_rows) < len(full_rows)