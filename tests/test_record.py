"""Tests for multi-version records and version GC (Sections 5.1, 5.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.record import TOMBSTONE, Version, VersionedRecord
from repro.core.snapshot import SnapshotDescriptor
from repro.errors import InvalidState


def record_of(*versions):
    return VersionedRecord([Version(tid, payload) for tid, payload in versions])


class TestVersionedRecord:
    def test_versions_sorted_newest_first(self):
        record = record_of((2, "b"), (5, "c"), (1, "a"))
        assert record.version_numbers() == (5, 2, 1)
        assert record.newest_tid == 5

    def test_initial(self):
        record = VersionedRecord.initial(7, ("x",))
        assert len(record) == 1
        assert record.get(7).payload == ("x",)

    def test_latest_visible_respects_snapshot(self):
        record = record_of((1, "old"), (5, "mid"), (9, "new"))
        assert record.latest_visible(SnapshotDescriptor(9, 0)).payload == "new"
        assert record.latest_visible(SnapshotDescriptor(6, 0)).payload == "mid"
        assert record.latest_visible(SnapshotDescriptor(4, 0)).payload == "old"

    def test_latest_visible_none_when_too_old(self):
        record = record_of((5, "x"))
        snapshot = SnapshotDescriptor(2, 0)
        assert record.latest_visible(snapshot) is None

    def test_visible_tombstone_is_returned(self):
        record = record_of((1, "x"))
        deleted = record.with_version(Version(3, TOMBSTONE))
        visible = deleted.latest_visible(SnapshotDescriptor(3, 0))
        assert visible.is_tombstone

    def test_with_version_rejects_duplicates(self):
        record = record_of((1, "x"))
        with pytest.raises(InvalidState):
            record.with_version(Version(1, "y"))

    def test_without_version(self):
        record = record_of((1, "a"), (2, "b"))
        pruned = record.without_version(2)
        assert pruned.version_numbers() == (1,)
        assert record.version_numbers() == (2, 1)  # original untouched

    def test_get(self):
        record = record_of((1, "a"), (2, "b"))
        assert record.get(2).payload == "b"
        assert record.get(3) is None


class TestGarbageCollection:
    def test_definition_from_paper(self):
        # V = {1, 3, 5, 8}, lav = 5: C = {1,3,5}, G = C \ {5} = {1,3}.
        record = record_of((1, "a"), (3, "b"), (5, "c"), (8, "d"))
        assert sorted(record.collectable_versions(5)) == [1, 3]
        pruned = record.collect_garbage(5)
        assert pruned.version_numbers() == (8, 5)

    def test_newest_globally_visible_survives(self):
        record = record_of((1, "a"), (2, "b"))
        pruned = record.collect_garbage(100)
        assert pruned.version_numbers() == (2,)

    def test_no_candidates_no_change(self):
        record = record_of((10, "a"), (12, "b"))
        assert record.collect_garbage(5) is record

    def test_single_version_never_collected(self):
        record = record_of((1, "a"))
        assert record.collect_garbage(100) is record

    def test_fully_deleted(self):
        deleted = record_of((1, "a")).with_version(Version(2, TOMBSTONE))
        assert deleted.fully_deleted(100)
        assert not deleted.fully_deleted(1)  # version 1 still visible

    def test_gc_keeps_snapshot_reads_correct(self):
        """GC must never remove a version some active snapshot reads."""
        record = record_of((1, "a"), (4, "b"), (9, "c"))
        lav = 4  # oldest active transaction has base 4
        pruned = record.collect_garbage(lav)
        for base in range(lav, 12):
            snapshot = SnapshotDescriptor(base, 0)
            before = record.latest_visible(snapshot)
            after = pruned.latest_visible(snapshot)
            assert (before is None) == (after is None)
            if before is not None:
                assert before.payload == after.payload


# -- property-based -----------------------------------------------------------


versions_strategy = st.lists(
    st.integers(min_value=1, max_value=50), min_size=1, max_size=12, unique=True
)


@given(versions_strategy, st.integers(min_value=0, max_value=60))
def test_gc_preserves_visibility_for_snapshots_at_or_above_lav(tids, lav):
    record = VersionedRecord([Version(tid, f"p{tid}") for tid in tids])
    pruned = record.collect_garbage(lav)
    for base in range(lav, 61):
        snapshot = SnapshotDescriptor(base, 0)
        before = record.latest_visible(snapshot)
        after = pruned.latest_visible(snapshot)
        if before is None:
            assert after is None
        else:
            assert after is not None and after.tid == before.tid


@given(versions_strategy, st.integers(min_value=0, max_value=60))
def test_gc_set_definition(tids, lav):
    record = VersionedRecord([Version(tid, "x") for tid in tids])
    candidates = {tid for tid in tids if tid <= lav}
    expected = candidates - {max(candidates)} if candidates else set()
    assert set(record.collectable_versions(lav)) == expected


@given(versions_strategy)
def test_at_least_one_version_always_remains(tids):
    record = VersionedRecord([Version(tid, "x") for tid in tids])
    pruned = record.collect_garbage(10_000)
    assert len(pruned) >= 1
