"""Tests for processing-node recovery (Section 4.4.1)."""

import pytest

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.core.recovery import discover_from_log, recover_processing_node
from repro.core.spaces import DATA_SPACE, data_key
from repro.core.txlog import TransactionLog
from repro.errors import TransactionAborted

K1 = data_key(1, 1)
K2 = data_key(1, 2)
K3 = data_key(1, 3)


@pytest.fixture
def env(cluster):
    cm = CommitManager(0, cluster.execute, tid_range_size=16)
    return cluster, cm


def make_pn(cluster, cm, pn_id):
    pn = ProcessingNode(pn_id)
    return pn, DirectRunner(Router(cluster, cm, pn_id=pn_id))


def seed(cluster, cm, rows):
    pn, runner = make_pn(cluster, cm, 99)

    def logic(txn):
        for key, payload in rows.items():
            txn.insert(key, payload)
        return None
        yield

    runner.run(pn.run_transaction(logic))


def crash_mid_commit(cluster, cm, pn_id, writes):
    """Run a transaction up to (and including) applying its updates,
    then 'crash' -- i.e. stop driving the coroutine before the commit
    flag is written."""
    pn, runner = make_pn(cluster, cm, pn_id)
    txn = runner.run(pn.begin())
    for key, payload in writes.items():
        runner.run(txn.update(key, payload))
    commit = txn.commit()
    # Drive the commit only through the log append + data apply batch.
    result = None
    applied = False
    while not applied:
        request = commit.send(result)
        result = runner.router.execute(request)
        if isinstance(request, effects.Batch) and any(
            isinstance(op, effects.PutIfVersion) for op in request.ops
        ):
            applied = True
    return txn  # crashed: commit never completed


class TestRecovery:
    def test_mid_commit_transaction_rolled_back(self, env):
        cluster, cm = env
        seed(cluster, cm, {K1: ("v0",), K2: ("w0",)})
        crashed = crash_mid_commit(cluster, cm, 5, {K1: ("bad",), K2: ("bad",)})
        # The partially committed version is physically present...
        record, _ = cluster.execute(effects.Get(DATA_SPACE, K1))
        assert record.get(crashed.tid) is not None

        _pn, runner = make_pn(cluster, cm, 0)
        rolled_back = runner.run(
            recover_processing_node(5, [cm], TransactionLog())
        )
        assert crashed.tid in rolled_back
        for key in (K1, K2):
            record, _ = cluster.execute(effects.Get(DATA_SPACE, key))
            assert record.get(crashed.tid) is None

    def test_recovery_completes_tids_so_base_advances(self, env):
        cluster, cm = env
        seed(cluster, cm, {K1: ("v0",)})
        crashed = crash_mid_commit(cluster, cm, 5, {K1: ("bad",)})
        base_before = cm.completed.base
        _pn, runner = make_pn(cluster, cm, 0)
        runner.run(recover_processing_node(5, [cm], TransactionLog()))
        assert cm.completed.contains(crashed.tid)
        assert cm.active_tids_of(5) == []

    def test_active_but_not_applying_needs_no_rollback(self, env):
        cluster, cm = env
        seed(cluster, cm, {K1: ("v0",)})
        pn, runner = make_pn(cluster, cm, 5)
        txn = runner.run(pn.begin())
        runner.run(txn.update(K1, ("never-applied",)))
        # crash before commit: updates were only buffered on the PN
        _pn0, runner0 = make_pn(cluster, cm, 0)
        rolled_back = runner0.run(
            recover_processing_node(5, [cm], TransactionLog())
        )
        assert rolled_back == []  # nothing applied, nothing to roll back
        assert cm.completed.contains(txn.tid)
        check_pn, check_runner = make_pn(cluster, cm, 0)
        check = check_runner.run(check_pn.begin())
        assert check_runner.run(check.read(K1)) == ("v0",)

    def test_committed_transactions_left_alone(self, env):
        cluster, cm = env
        seed(cluster, cm, {K1: ("v0",)})
        pn, runner = make_pn(cluster, cm, 5)

        def logic(txn):
            yield from txn.update(K1, ("committed",))

        runner.run(pn.run_transaction(logic))
        _pn0, runner0 = make_pn(cluster, cm, 0)
        rolled_back = runner0.run(
            recover_processing_node(5, [cm], TransactionLog())
        )
        assert rolled_back == []
        check = runner0.run(_pn0.begin())
        assert runner0.run(check.read(K1)) == ("committed",)

    def test_recovery_only_touches_failed_pn(self, env):
        cluster, cm = env
        seed(cluster, cm, {K1: ("v0",), K2: ("w0",)})
        crashed = crash_mid_commit(cluster, cm, 5, {K1: ("bad",)})
        survivor = crash_mid_commit(cluster, cm, 6, {K2: ("pending",)})
        _pn0, runner0 = make_pn(cluster, cm, 0)
        rolled_back = runner0.run(
            recover_processing_node(5, [cm], TransactionLog())
        )
        assert rolled_back == [crashed.tid]
        record, _ = cluster.execute(effects.Get(DATA_SPACE, K2))
        assert record.get(survivor.tid) is not None  # untouched

    def test_multiple_failed_transactions_one_recovery(self, env):
        cluster, cm = env
        seed(cluster, cm, {K1: ("a",), K2: ("b",), K3: ("c",)})
        t1 = crash_mid_commit(cluster, cm, 5, {K1: ("x",)})
        t2 = crash_mid_commit(cluster, cm, 5, {K2: ("y",), K3: ("z",)})
        _pn0, runner0 = make_pn(cluster, cm, 0)
        rolled_back = runner0.run(
            recover_processing_node(5, [cm], TransactionLog())
        )
        assert set(rolled_back) == {t1.tid, t2.tid}

    def test_discovery_from_log_walk(self, env):
        """The fallback walk (highest tid down to the lav) finds the same
        transactions without commit-manager state."""
        cluster, cm = env
        seed(cluster, cm, {K1: ("v0",)})
        crashed = crash_mid_commit(cluster, cm, 5, {K1: ("bad",)})
        highest = cm.last_assigned_tid
        _pn0, runner0 = make_pn(cluster, cm, 0)
        rolled_back = runner0.run(
            discover_from_log(5, highest, 0, TransactionLog())
        )
        assert crashed.tid in rolled_back
        record, _ = cluster.execute(effects.Get(DATA_SPACE, K1))
        assert record.get(crashed.tid) is None

    def test_recovered_state_is_consistent_for_new_transactions(self, env):
        cluster, cm = env
        seed(cluster, cm, {K1: (100,), K2: (200,)})
        crash_mid_commit(cluster, cm, 5, {K1: (1,), K2: (2,)})
        _pn0, runner0 = make_pn(cluster, cm, 0)
        runner0.run(recover_processing_node(5, [cm], TransactionLog()))
        txn = runner0.run(_pn0.begin())
        values = runner0.run(txn.read_many([K1, K2]))
        assert values == {K1: (100,), K2: (200,)}


class TestDatabaseLevelRecovery:
    def test_crash_processing_node_api(self, db):
        session = db.session()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 10)")
        # open a transaction on a second PN and leave it hanging
        other = db.session()
        other.execute("BEGIN")
        other.execute("UPDATE t SET v = 99 WHERE id = 1")
        db.crash_processing_node(other.pn.pn_id)
        rows = session.query("SELECT v FROM t WHERE id = 1")
        assert rows == [{"v": 10}]
