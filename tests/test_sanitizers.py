"""Tests for the ``repro.san`` sanitizer + schedule-exploration package.

Three layers:

* the kernel's :class:`~repro.sim.kernel.SchedulerPolicy` hook -- the
  ``None`` path keeps the historical FIFO order, a policy can reorder
  same-time events, and a recorded trace replays bit-for-bit;
* the scenarios run *clean* against the healthy tree (the sanitizers
  must not cry wolf), with write-skew surfaced as a report;
* seeded mutations -- a broken store-conditional, a GC that ignores the
  lowest active version, and a broken visibility rule -- must each trip
  their sanitizer under the explorer, and every failing schedule must
  replay deterministically (plus minimize to a failing prefix).
"""

from __future__ import annotations

import pytest

from repro.core.record import VersionedRecord
from repro.dispatch import DispatchContext, compose, drive_sync
from repro.dispatch.interceptors import TraceInterceptor
from repro.errors import KeyNotFound
from repro.san.explorer import (
    PCTPolicy,
    RandomJitterPolicy,
    ReplayPolicy,
    ScheduleExplorer,
    ScheduleTrace,
)
from repro.san.scenarios import SCENARIOS, gc_pressure, lost_update, write_skew
from repro.sim.kernel import Delay, SchedulerPolicy, Simulator
from repro.store.cell import Cell, approx_size
from repro.store.node import StorageNode
from repro import effects


# -- kernel scheduler-policy hook ----------------------------------------


def _ordering_program(sim, order, n=4):
    def proc(tag):
        yield Delay(10.0)  # all resumes land on the same timestamp
        order.append(tag)

    for i in range(n):
        sim.spawn(proc(i), name=f"p{i}")


class TestSchedulerPolicy:
    def test_none_policy_is_fifo(self):
        order = []
        sim = Simulator()
        _ordering_program(sim, order)
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_policy_can_reorder_same_time_events(self):
        class HighestNameFirst(SchedulerPolicy):
            """Same-time events fire in descending process-name order."""

            def __init__(self):
                self.counter = 0

            def on_schedule(self, when, now, process):
                self.counter += 1
                rank = 99 if process is None else 9 - int(process.name[1:])
                return when, (rank << 32) | self.counter

        order = []
        sim = Simulator(policy=HighestNameFirst())
        _ordering_program(sim, order)
        sim.run()
        assert order == [3, 2, 1, 0]

    def test_policy_never_fires_events_in_the_past(self):
        fired_at = []
        sim = Simulator(policy=RandomJitterPolicy(seed=5, time_jitter=3.0))

        def proc():
            for _ in range(5):
                yield Delay(1.0)
                fired_at.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert fired_at == sorted(fired_at)
        assert all(t >= 1.0 for t in fired_at)

    def test_random_policies_differ_and_replay_matches(self):
        def run(policy):
            order = []
            sim = Simulator(policy=policy)
            _ordering_program(sim, order, n=6)
            sim.run()
            return order

        recording = RandomJitterPolicy(seed=3)
        shuffled = run(recording)
        assert sorted(shuffled) == list(range(6))
        assert run(ReplayPolicy(recording.trace)) == shuffled

        pct = PCTPolicy(seed=3)
        prioritized = run(pct)
        assert sorted(prioritized) == list(range(6))
        assert run(ReplayPolicy(pct.trace)) == prioritized

    def test_replay_past_trace_end_is_deterministic(self):
        recording = RandomJitterPolicy(seed=9)
        order = []
        sim = Simulator(policy=recording)
        _ordering_program(sim, order, n=4)
        sim.run()

        def run_prefix(length):
            tail_order = []
            sim = Simulator(policy=ReplayPolicy(recording.trace.prefix(length)))
            _ordering_program(sim, tail_order, n=4)
            sim.run()
            return tail_order

        assert run_prefix(2) == run_prefix(2)

    def test_trace_round_trips_through_dict(self):
        trace = ScheduleTrace(7, "random")
        trace.record(1.0, 42)
        trace.record(2.5, 99)
        clone = ScheduleTrace.from_dict(trace.to_dict())
        assert clone.decisions == trace.decisions
        assert clone.seed == 7


# -- healthy tree: scenarios stay clean ----------------------------------


class TestHealthyScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_baseline_schedule_is_clean(self, name):
        log = SCENARIOS[name](None)
        assert log.clean, log.summary()

    def test_write_skew_is_reported_not_failed(self):
        log = write_skew(None)
        assert log.clean
        assert any(r.code == "SSI-WRITE-SKEW" for r in log.reports)

    def test_explorer_finds_no_failures_on_healthy_tree(self):
        explorer = ScheduleExplorer(lost_update, schedules=4, seed=1)
        assert explorer.run() == []
        assert explorer.runs == 4


# -- seeded mutations: each must trip its sanitizer ----------------------


def _broken_put_if_version(self, partition_id, space, key, value,
                           expected_version):
    """do_put_if_version with the version check deleted: last writer
    wins unconditionally, the classic lost-update bug."""
    self._check_alive()
    store = self.partition(partition_id)
    cells = store.space(space)
    cell = cells.get(key)
    if cell is None:
        self._charge(store, approx_size(value) + approx_size(key))
        cells[key] = Cell(value, 1)
        store.invalidate_scan_cache(space)
        return (True, 1), 16
    self._charge(store, approx_size(value) - approx_size(cell.value))
    cell.value = value
    cell.version += 1
    return (True, cell.version), 16


def _broken_collectable_versions(self, lav):
    """collectable_versions that ignores the lowest active version:
    prunes every version but the newest, yanking data from under open
    snapshots."""
    candidates = [v.tid for v in self.versions]
    if len(candidates) <= 1:
        return []
    newest = max(candidates)
    return [tid for tid in candidates if tid != newest]


def _broken_latest_visible(self, snapshot):
    """latest_visible that returns the newest version regardless of the
    snapshot: dirty reads of concurrent committers."""
    return self.versions[0] if self.versions else None


def _explore_with_replay(scenario, schedules=2):
    """Run the explorer, assert it found failures, and check every
    failing trace replays to (at least) an overlapping violation set."""
    explorer = ScheduleExplorer(scenario, schedules=schedules, seed=0)
    failures = explorer.run()
    assert failures, "mutation was not detected by any explored schedule"
    for failure in failures:
        replayed = explorer.replay(failure)
        assert not replayed.clean
        assert set(failure.codes) & set(replayed.codes()), (
            f"replay of {failure!r} lost the violation: "
            f"{failure.codes} vs {replayed.codes()}"
        )
    return explorer, failures


class TestSeededMutations:
    def test_broken_store_conditional_trips_si_sanitizer(self, monkeypatch):
        monkeypatch.setattr(
            StorageNode, "do_put_if_version", _broken_put_if_version
        )
        baseline = lost_update(None)
        assert not baseline.clean
        assert set(baseline.codes()) & {
            "SI-LOST-UPDATE", "SI-STALE-SC", "SCN-COUNTER"
        }
        explorer, failures = _explore_with_replay(lost_update)
        # The shortest failing prefix must itself still fail.
        minimal = explorer.minimize(failures[0])
        assert len(minimal) <= len(failures[0].trace)
        assert not explorer.scenario(ReplayPolicy(minimal)).clean

    def test_broken_gc_trips_gc_sanitizer(self, monkeypatch):
        monkeypatch.setattr(
            VersionedRecord, "collectable_versions",
            _broken_collectable_versions,
        )
        baseline = gc_pressure(None)
        assert not baseline.clean
        assert set(baseline.codes()) & {
            "GC-ABOVE-LAV", "GC-LIVE-SNAPSHOT", "SCN-SNAPSHOT-LOST"
        }
        _explore_with_replay(gc_pressure)

    def test_broken_visibility_trips_read_check(self, monkeypatch):
        monkeypatch.setattr(
            VersionedRecord, "latest_visible", _broken_latest_visible
        )
        baseline = gc_pressure(None)
        assert not baseline.clean
        assert "SI-READ" in baseline.codes()
        _explore_with_replay(gc_pressure)


# -- TraceInterceptor error path (regression) ----------------------------


class TestTraceErrorPath:
    def test_errored_requests_still_counted(self):
        interceptor = TraceInterceptor()
        ctx = DispatchContext(pn_id=0)

        def tail(request):
            raise KeyNotFound(request.key)
            yield  # pragma: no cover - makes tail a generator function

        chain = compose([interceptor], tail, ctx)
        with pytest.raises(KeyNotFound):
            drive_sync(chain(effects.Get("data", 7)))

        trace = interceptor.trace
        stats = trace.per_class["Get"]
        assert stats.count == 1  # failed requests reconcile with shadow
        assert stats.errors == 1
        assert stats.bytes > 0
        assert trace.errors_by_type == {"KeyNotFound": 1}
        assert trace.round_trips == 0  # round trips stay success-only

    def test_success_path_unchanged(self):
        interceptor = TraceInterceptor()
        ctx = DispatchContext(pn_id=0)

        def tail(request):
            return ((1,), 1)
            yield  # pragma: no cover

        chain = compose([interceptor], tail, ctx)
        assert drive_sync(chain(effects.Get("data", 7))) == ((1,), 1)
        trace = interceptor.trace
        assert trace.round_trips == 1
        assert trace.per_class["Get"].errors == 0
