"""Randomized interleaving stress tests for snapshot-isolation invariants.

The key guarantees under test:

* *atomic visibility*: keys always written together are always read
  equal, no matter how transactions interleave;
* *no lost updates*: the sum of successfully committed increments equals
  the final counter values;
* *consistent snapshots across keys*: a reader never observes one key
  from transaction T and another key from "before T".
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.runner import DirectRunner, Router
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.core.spaces import data_key
from repro.san import make_sanitizers, sanitizers_enabled
from repro.store.cluster import StorageCluster
from tests.conftest import interleave

PAIR_A = data_key(1, 1)
PAIR_B = data_key(1, 2)

#: ViolationLogs of every sanitized fresh_env built during the current
#: test, drained (and asserted clean) by the autouse fixture below.
_SANITIZER_LOGS = []


def fresh_env(n_pns=2):
    """Build a cluster + CM + PNs; with ``REPRO_SANITIZE=1`` every
    runner carries the SI/GC/version-chain sanitizer chain."""
    cluster = StorageCluster(n_nodes=3)
    cm = CommitManager(0, cluster.execute, tid_range_size=8)
    pns = [ProcessingNode(i) for i in range(n_pns)]
    chain = ()
    if sanitizers_enabled():
        log, chain = make_sanitizers()
        _SANITIZER_LOGS.append(log)
    runners = [
        DirectRunner(Router(cluster, cm, pn_id=i, interceptors=chain))
        for i in range(n_pns)
    ]
    return cluster, cm, pns, runners


@pytest.fixture(autouse=True)
def _sanitizers_stay_clean():
    """Every test in this module doubles as a sanitizer soak when
    ``REPRO_SANITIZE=1``: the invariant checkers must agree that the
    interleavings they watched were serializable-snapshot clean."""
    _SANITIZER_LOGS.clear()
    yield
    for log in _SANITIZER_LOGS:
        log.assert_clean()
    _SANITIZER_LOGS.clear()


def seed_pair(pn, runner):
    def logic(txn):
        txn.insert(PAIR_A, (0,))
        txn.insert(PAIR_B, (0,))
        return None
        yield

    runner.run(pn.run_transaction(logic))


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_paired_writes_always_read_equal(seed):
    """Writers bump both keys to the same value; readers interleaved at
    every request boundary must always see A == B."""
    cluster, cm, pns, runners = fresh_env()
    seed_pair(pns[0], runners[0])
    rng = random.Random(seed)

    observations = []

    def writer(pn, value):
        def logic(txn):
            yield from txn.update(PAIR_A, (value,))
            yield from txn.update(PAIR_B, (value,))

        def attempt():
            from repro.errors import TransactionAborted

            try:
                yield from pn.run_transaction(logic)
            except TransactionAborted:
                pass

        return attempt()

    def reader(pn):
        def logic(txn):
            rows = yield from txn.read_many([PAIR_A, PAIR_B])
            return rows[PAIR_A], rows[PAIR_B]

        def attempt():
            result, _ = yield from pn.run_transaction(logic)
            observations.append(result)

        return attempt()

    generators = []
    for i in range(6):
        generators.append(writer(pns[i % 2], i + 1))
    for _ in range(8):
        generators.append(reader(pns[rng.randint(0, 1)]))
    rng.shuffle(generators)
    _results, errors = interleave(runners[0].router, generators)
    assert not any(errors)
    for a, b in observations:
        assert a == b, f"torn read: A={a} B={b}"


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_no_lost_increments(seed):
    """Counters bumped by racing transactions with retries: the final
    values equal the number of successful commits per key."""
    cluster, cm, pns, runners = fresh_env()
    keys = [data_key(2, i) for i in range(4)]

    def init(txn):
        for key in keys:
            txn.insert(key, (0,))
        return None
        yield

    runners[0].run(pns[0].run_transaction(init))
    rng = random.Random(seed)
    successes = {key: 0 for key in keys}

    def bumper(pn, key):
        def logic(txn):
            value = yield from txn.read(key)
            yield from txn.update(key, (value[0] + 1,))

        def attempt():
            from repro.errors import TransactionAborted

            try:
                yield from pn.run_transaction(logic)
                successes[key] += 1
            except TransactionAborted:
                pass

        return attempt()

    generators = [
        bumper(pns[rng.randint(0, 1)], rng.choice(keys)) for _ in range(20)
    ]
    _results, errors = interleave(runners[0].router, generators)
    assert not any(errors)

    def check(txn):
        return (yield from txn.read_many(keys))

    final, _ = runners[0].run(pns[0].run_transaction(check))
    for key in keys:
        assert final[key] == (successes[key],)


def test_read_only_transactions_never_abort():
    """Readers make progress regardless of write churn (SI is optimistic
    but read-only transactions have empty write sets)."""
    from repro.errors import TransactionAborted

    cluster, cm, pns, runners = fresh_env()
    seed_pair(pns[0], runners[0])

    def writer(txn):
        value = yield from txn.read(PAIR_A)
        yield from txn.update(PAIR_A, (value[0] + 1,))
        yield from txn.update(PAIR_B, (value[0] + 1,))

    def reader(txn):
        return (yield from txn.read_many([PAIR_A, PAIR_B]))

    def guarded(pn, logic):
        def attempt():
            try:
                yield from pn.run_transaction(logic)
                return True
            except TransactionAborted:
                return False

        return attempt()

    generators = [guarded(pns[0], writer) for _ in range(8)]
    reader_gens = [guarded(pns[1], reader) for _ in range(8)]
    all_gens = []
    for pair in zip(generators, reader_gens):
        all_gens.extend(pair)
    results, errors = interleave(runners[0].router, all_gens)
    assert not any(errors)
    # all readers (odd positions) succeeded
    assert all(results[1::2])


def test_monotonic_reads_across_transactions():
    """Consecutive transactions on one PN never observe time going
    backwards (their snapshots only grow)."""
    cluster, cm, pns, runners = fresh_env(n_pns=1)
    seed_pair(pns[0], runners[0])
    pn, runner = pns[0], runners[0]

    last_seen = -1
    for i in range(10):
        def bump(txn, value=i):
            yield from txn.update(PAIR_A, (value,))

        runner.run(pn.run_transaction(bump))

        def read(txn):
            return (yield from txn.read(PAIR_A))

        value, _ = runner.run(pn.run_transaction(read))
        assert value[0] >= last_seen
        last_seen = value[0]
