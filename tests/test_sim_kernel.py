"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import InvalidState
from repro.sim.kernel import Delay, Event, Simulator, all_of


def test_delay_advances_time():
    sim = Simulator()
    trace = []

    def proc():
        yield Delay(10.0)
        trace.append(sim.now)
        yield Delay(5.0)
        trace.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert trace == [10.0, 15.0]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1.0)


def test_processes_interleave_in_time_order():
    sim = Simulator()
    trace = []

    def proc(name, step):
        for _ in range(3):
            yield Delay(step)
            trace.append((sim.now, name))

    sim.spawn(proc("a", 10.0))
    sim.spawn(proc("b", 4.0))
    sim.run()
    assert trace == sorted(trace, key=lambda item: item[0])
    assert trace[0] == (4.0, "b")
    assert (10.0, "a") in trace


def test_same_time_fifo_order():
    """Events scheduled for the same instant fire in scheduling order."""
    sim = Simulator()
    trace = []

    def proc(name):
        yield Delay(5.0)
        trace.append(name)

    for name in ("first", "second", "third"):
        sim.spawn(proc(name))
    sim.run()
    assert trace == ["first", "second", "third"]


def test_run_until_stops_early():
    sim = Simulator()
    trace = []

    def proc():
        while True:
            yield Delay(10.0)
            trace.append(sim.now)

    sim.spawn(proc())
    sim.run(until=35.0)
    assert trace == [10.0, 20.0, 30.0]
    assert sim.now == 35.0


def test_event_wakes_waiters_with_value():
    sim = Simulator()
    event = sim.event()
    got = []

    def waiter():
        value = yield event
        got.append((sim.now, value))

    def trigger():
        yield Delay(7.0)
        event.trigger("payload")

    sim.spawn(waiter())
    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert got == [(7.0, "payload"), (7.0, "payload")]


def test_wait_on_already_triggered_event():
    sim = Simulator()
    event = sim.event()
    event.trigger(42)
    got = []

    def waiter():
        value = yield event
        got.append(value)

    sim.spawn(waiter())
    sim.run()
    assert got == [42]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.trigger(None)
    with pytest.raises(InvalidState):
        event.trigger(None)


def test_process_result_and_done_event():
    sim = Simulator()

    def worker():
        yield Delay(3.0)
        return "result"

    process = sim.spawn(worker())
    sim.run()
    assert process.finished
    assert process.result == "result"
    assert process.done_event.triggered


def test_call_at_runs_callback_at_time():
    sim = Simulator()
    trace = []
    sim.call_at(12.0, lambda: trace.append(sim.now))
    sim.call_at(4.0, lambda: trace.append(sim.now))

    def keep_alive():
        yield Delay(20.0)

    sim.spawn(keep_alive())
    sim.run()
    assert trace == [4.0, 12.0]


def test_call_at_in_the_past_runs_now():
    sim = Simulator()
    trace = []

    def proc():
        yield Delay(10.0)
        sim.call_at(5.0, lambda: trace.append(sim.now))
        yield Delay(1.0)

    sim.spawn(proc())
    sim.run()
    assert trace == [10.0]


def test_run_until_complete():
    sim = Simulator()

    def worker():
        yield Delay(2.0)
        return 99

    def background():
        while True:
            yield Delay(1.0)

    sim.spawn(background())
    process = sim.spawn(worker())
    assert sim.run_until_complete(process) == 99


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    event = sim.event()  # never triggered

    def stuck():
        yield event

    process = sim.spawn(stuck())
    with pytest.raises(InvalidState):
        sim.run_until_complete(process)


def test_all_of_waits_for_all():
    sim = Simulator()
    finished = []

    def worker(delay):
        yield Delay(delay)
        finished.append(delay)

    workers = [sim.spawn(worker(d)) for d in (5.0, 1.0, 3.0)]
    done = []

    def waiter():
        yield from all_of(sim, workers)
        done.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert done == [5.0]
    assert sorted(finished) == [1.0, 3.0, 5.0]


def test_stop_interrupts_run():
    sim = Simulator()
    trace = []

    def proc():
        while True:
            yield Delay(1.0)
            trace.append(sim.now)
            if sim.now >= 3.0:
                sim.stop()

    sim.spawn(proc())
    sim.run()
    assert trace == [1.0, 2.0, 3.0]


def test_stop_interrupts_run_until_complete():
    # run() and run_until_complete() share one drain loop; stop() must
    # interrupt both entry points identically.
    sim = Simulator()
    trace = []

    def stopper():
        while True:
            yield Delay(1.0)
            trace.append(sim.now)
            if sim.now >= 3.0:
                sim.stop()

    def forever():
        while True:
            yield Delay(10.0)

    sim.spawn(stopper())
    target = sim.spawn(forever())
    result = sim.run_until_complete(target)
    assert result is None          # interrupted, not finished
    assert not target.finished
    assert trace == [1.0, 2.0, 3.0]
    assert sim.now == 3.0

    # A subsequent run() resumes from where stop() left off (the stopper
    # fires at t=4.0 and immediately stops the simulation again).
    trace.clear()
    sim.run(until=5.0)
    assert trace == [4.0]
    assert sim.now == 4.0


def test_stop_then_run_resumes():
    sim = Simulator()
    seen = []

    def proc():
        for _ in range(4):
            yield Delay(1.0)
            seen.append(sim.now)
            sim.stop()

    sim.spawn(proc())
    for expected in (1.0, 2.0, 3.0, 4.0):
        sim.run()
        assert seen[-1] == expected


def test_yielding_garbage_raises():
    sim = Simulator()

    def bad():
        yield "not a delay"

    sim.spawn(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_clock_view():
    sim = Simulator()
    clock = sim.clock()

    def proc():
        yield Delay(8.0)

    sim.spawn(proc())
    sim.run()
    assert clock.now == 8.0


def test_delay_cache_at_capacity(monkeypatch):
    """delay_of degrades gracefully at capacity: fresh correct Delays,
    no eviction of the durations interned first."""
    from repro.sim import kernel

    monkeypatch.setattr(kernel, "_DELAY_CACHE", {})
    monkeypatch.setattr(kernel, "_DELAY_CACHE_MAX", 4)

    interned = [kernel.delay_of(float(i)) for i in range(4)]
    assert kernel.delay_cache_info() == (4, 4)
    # Within capacity: same instance back on every call.
    for i, pooled in enumerate(interned):
        assert kernel.delay_of(float(i)) is pooled

    # Saturated: new durations still come back correct, just uncached.
    overflow_a = kernel.delay_of(99.0)
    overflow_b = kernel.delay_of(99.0)
    assert overflow_a.duration == overflow_b.duration == 99.0
    assert overflow_a is not overflow_b
    assert kernel.delay_cache_info() == (4, 4)

    # Insert-only, no eviction: the original residents survive overflow.
    assert kernel.delay_of(0.0) is interned[0]
    assert kernel.delay_of(3.0) is interned[3]


def test_delay_cache_info_reports_live_pool():
    from repro.sim.kernel import delay_cache_info, delay_of

    size_before, capacity = delay_cache_info()
    assert 0 <= size_before <= capacity
    pooled = delay_of(123456.789)  # unlikely to collide with real uses
    size_after, _ = delay_cache_info()
    assert size_after >= size_before
    if size_after > size_before:  # interned (pool was not saturated)
        assert delay_of(123456.789) is pooled
