"""Tests for the simulated deployment and its cost model."""

import pytest

from repro import effects
from repro.bench.config import TellConfig
from repro.bench.simcluster import CorePool, SimFabric, SimulatedTell
from repro.workloads.tpcc.params import TpccScale


def tiny_config(**overrides):
    defaults = dict(
        processing_nodes=1,
        storage_nodes=2,
        threads_per_pn=4,
        scale=TpccScale.tiny(2),
        duration_us=60_000.0,
        warmup_us=10_000.0,
        seed=5,
    )
    defaults.update(overrides)
    return TellConfig(**defaults)


class TestCorePool:
    def test_single_core_serializes(self):
        pool = CorePool(1)
        start1, end1 = pool.reserve(0.0, 10.0)
        start2, end2 = pool.reserve(0.0, 10.0)
        assert (start1, end1) == (0.0, 10.0)
        assert (start2, end2) == (10.0, 20.0)

    def test_multi_core_parallel(self):
        pool = CorePool(2)
        assert pool.reserve(0.0, 10.0) == (0.0, 10.0)
        assert pool.reserve(0.0, 10.0) == (0.0, 10.0)
        assert pool.reserve(0.0, 10.0) == (10.0, 20.0)

    def test_idle_gap(self):
        pool = CorePool(1)
        pool.reserve(0.0, 5.0)
        assert pool.reserve(100.0, 5.0) == (100.0, 105.0)

    def test_earliest_peeks(self):
        pool = CorePool(1)
        pool.reserve(0.0, 5.0)
        assert pool.earliest(0.0) == 5.0
        assert pool.earliest(10.0) == 10.0


class TestSimulatedRun:
    def test_small_run_commits_transactions(self):
        deployment = SimulatedTell(tiny_config())
        deployment.load()
        metrics = deployment.run()
        assert metrics.total_committed > 20
        assert metrics.tpmc > 0
        assert metrics.measured_time_us == 50_000.0

    def test_deterministic_with_same_seed(self):
        runs = []
        for _ in range(2):
            deployment = SimulatedTell(tiny_config())
            deployment.load()
            metrics = deployment.run()
            runs.append(
                (metrics.total_committed, metrics.total_conflicts,
                 dict(metrics.committed))
            )
        assert runs[0] == runs[1]

    def test_different_seed_different_run(self):
        a = SimulatedTell(tiny_config(seed=5))
        a.load()
        b = SimulatedTell(tiny_config(seed=6))
        b.load()
        assert a.run().total_committed != b.run().total_committed

    def test_more_pns_more_throughput(self):
        one = SimulatedTell(tiny_config(scale=TpccScale.small(16)))
        one.load()
        tpmc_one = one.run().tpmc
        four = SimulatedTell(
            tiny_config(processing_nodes=4, scale=TpccScale.small(16))
        )
        four.load()
        tpmc_four = four.run().tpmc
        assert tpmc_four > tpmc_one * 1.5

    def test_replication_costs_throughput_under_writes(self):
        rf1 = SimulatedTell(tiny_config(storage_nodes=3))
        rf1.load()
        tpmc_rf1 = rf1.run().tpmc
        rf3 = SimulatedTell(
            tiny_config(storage_nodes=3, replication_factor=3)
        )
        rf3.load()
        tpmc_rf3 = rf3.run().tpmc
        assert tpmc_rf3 < tpmc_rf1

    def test_infiniband_beats_ethernet(self):
        ib = SimulatedTell(tiny_config())
        ib.load()
        tpmc_ib = ib.run().tpmc
        eth = SimulatedTell(tiny_config(network="ethernet-10g"))
        eth.load()
        tpmc_eth = eth.run().tpmc
        assert tpmc_ib > tpmc_eth * 2

    def test_latencies_recorded(self):
        deployment = SimulatedTell(tiny_config())
        deployment.load()
        metrics = deployment.run()
        stats = metrics.latency("new_order")
        assert stats.count > 0
        assert 0 < stats.mean_us < 1e6

    def test_replicas_identical_after_run(self):
        config = tiny_config(storage_nodes=3, replication_factor=2)
        deployment = SimulatedTell(config)
        deployment.load()
        deployment.run()
        deployment.quiesce()
        cluster = deployment.cluster
        for pid in range(cluster.partitioner.n_partitions):
            replicas = cluster.partition_map.replicas_of(pid)
            reference = None
            for node_id in replicas:
                cells = cluster.nodes[node_id].partition(pid).spaces.get("data", {})
                snapshot = {k: (c.value.version_numbers(), c.version)
                            for k, c in cells.items()}
                if reference is None:
                    reference = snapshot
                else:
                    assert snapshot == reference

    def test_quiesce_idempotent(self):
        deployment = SimulatedTell(tiny_config())
        deployment.load()
        deployment.run()
        deployment.quiesce()
        assert deployment.quiesce() == 0

    def test_batching_reduces_messages(self):
        batched = SimulatedTell(tiny_config())
        batched.load()
        batched.run()
        unbatched = SimulatedTell(tiny_config(batching=False))
        unbatched.load()
        unbatched.run()
        per_txn_batched = (
            batched.fabric.stats.messages
            / max(1, batched.metrics.total_finished)
        )
        per_txn_unbatched = (
            unbatched.fabric.stats.messages
            / max(1, unbatched.metrics.total_finished)
        )
        assert per_txn_batched < per_txn_unbatched

    def test_commit_managers_scale_without_breaking(self):
        config = tiny_config(commit_managers=2, processing_nodes=2)
        deployment = SimulatedTell(config)
        deployment.load()
        metrics = deployment.run()
        assert metrics.total_committed > 20
        deployment.quiesce()
        # tids unique across managers: every version distinct
        seen = set()
        rows = deployment.cluster.execute(effects.Scan("txlog", None, None))
        for key, _entry, _version in rows:
            assert key not in seen
            seen.add(key)
