"""Tests for snapshot descriptors and the committed set (Section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.snapshot import CommittedSet, SnapshotDescriptor


class TestSnapshotDescriptor:
    def test_empty_snapshot_sees_only_zero(self):
        snapshot = SnapshotDescriptor(0, 0)
        assert snapshot.contains(0)
        assert not snapshot.contains(1)

    def test_base_covers_prefix(self):
        snapshot = SnapshotDescriptor(5, 0)
        for tid in range(6):
            assert snapshot.contains(tid)
        assert not snapshot.contains(6)

    def test_bits_represent_tids_above_base(self):
        # bit 0 -> base+1; by construction b+1 itself is never set after
        # normalization, so set bit 1 (tid base+2).
        snapshot = SnapshotDescriptor(3, 0b10)
        assert snapshot.contains(5)
        assert not snapshot.contains(4)
        assert not snapshot.contains(6)

    def test_normalization_advances_base(self):
        # bits 0b111 means base+1..base+3 completed -> base moves by 3.
        snapshot = SnapshotDescriptor(2, 0b111)
        assert snapshot.base == 5
        assert snapshot.bits == 0

    def test_normalization_partial(self):
        snapshot = SnapshotDescriptor(0, 0b1011)
        assert snapshot.base == 2
        assert snapshot.bits == 0b10

    def test_latest_visible_picks_max_member(self):
        snapshot = SnapshotDescriptor(4, 0b10)  # sees <=4 and 6
        assert snapshot.latest_visible([1, 6, 5]) == 6
        assert snapshot.latest_visible([5, 7]) is None
        assert snapshot.latest_visible([]) is None

    def test_with_completed(self):
        snapshot = SnapshotDescriptor(0, 0)
        grown = snapshot.with_completed(1)
        assert grown.base == 1
        assert snapshot.base == 0  # immutable
        sparse = snapshot.with_completed(3)
        assert sparse.base == 0
        assert sparse.contains(3)
        assert not sparse.contains(1)

    def test_with_completed_below_base_is_noop(self):
        snapshot = SnapshotDescriptor(9, 0)
        assert snapshot.with_completed(4) is snapshot

    def test_newly_completed_listing(self):
        snapshot = SnapshotDescriptor(10, 0).with_completed(12).with_completed(15)
        assert snapshot.newly_completed() == [12, 15]

    def test_equality_and_hash(self):
        a = SnapshotDescriptor(3, 0b10)
        b = SnapshotDescriptor(3, 0b10)
        assert a == b
        assert hash(a) == hash(b)
        assert a != SnapshotDescriptor(3, 0b100)

    def test_union_same_base(self):
        a = SnapshotDescriptor(2, 0b100)  # sees 5
        b = SnapshotDescriptor(2, 0b010)  # sees 4
        union = a.union(b)
        assert union.contains(4) and union.contains(5)
        assert not union.contains(3)

    def test_union_different_bases(self):
        a = SnapshotDescriptor(10, 0)
        b = SnapshotDescriptor(4, 0b1000000)  # sees <=4 and 11
        union = a.union(b)
        assert union.base == 11

    def test_issubset_reflexive(self):
        snapshot = SnapshotDescriptor(7, 0b1010)
        assert snapshot.issubset(snapshot)

    def test_issubset_base_ordering(self):
        small = SnapshotDescriptor(3, 0)
        large = SnapshotDescriptor(8, 0)
        assert small.issubset(large)
        assert not large.issubset(small)

    def test_issubset_with_bits(self):
        small = SnapshotDescriptor(3, 0b10)   # {<=3, 5}
        large = SnapshotDescriptor(3, 0b1010)  # {<=3, 5, 7}
        assert small.issubset(large)
        assert not large.issubset(small)

    def test_issubset_bits_vs_base(self):
        small = SnapshotDescriptor(2, 0b10)  # {<=2, 4}
        large = SnapshotDescriptor(6, 0)     # {<=6}
        assert small.issubset(large)

    def test_approx_size_grows_with_bits(self):
        small = SnapshotDescriptor(0, 0)
        big = SnapshotDescriptor(0, 1 << 8000)
        assert big.approx_size() > small.approx_size()

    def test_repr_truncates(self):
        snapshot = SnapshotDescriptor(0, 0)
        for tid in range(2, 20, 2):
            snapshot = snapshot.with_completed(tid)
        assert "..." in repr(snapshot)


class TestCommittedSet:
    def test_sequential_commits_advance_base(self):
        committed = CommittedSet()
        for tid in (1, 2, 3):
            committed.mark_completed(tid)
        assert committed.base == 3
        assert committed.bits == 0

    def test_out_of_order_commits(self):
        committed = CommittedSet()
        committed.mark_completed(3)
        assert committed.base == 0
        committed.mark_completed(1)
        assert committed.base == 1
        committed.mark_completed(2)
        assert committed.base == 3

    def test_duplicate_and_stale_marks_are_noops(self):
        committed = CommittedSet()
        committed.mark_completed(1)
        committed.mark_completed(1)
        assert committed.base == 1

    def test_snapshot_is_independent_copy(self):
        committed = CommittedSet()
        committed.mark_completed(1)
        snapshot = committed.snapshot()
        committed.mark_completed(2)
        assert snapshot.base == 1
        assert committed.base == 2

    def test_merge_snapshot(self):
        committed = CommittedSet()
        committed.mark_completed(2)  # {2}
        committed.merge_snapshot(SnapshotDescriptor(1, 0))
        assert committed.base == 2  # 1 and 2 both done

    def test_contains(self):
        committed = CommittedSet()
        committed.mark_completed(5)
        assert committed.contains(0)
        assert committed.contains(5)
        assert not committed.contains(3)


# -- property-based tests ------------------------------------------------------


tid_sets = st.lists(st.integers(min_value=1, max_value=200), max_size=60)


@given(tid_sets)
def test_membership_matches_model(tids):
    """The bitset implementation agrees with a plain-set model."""
    committed = CommittedSet()
    for tid in tids:
        committed.mark_completed(tid)
    model = set(tids) | {0}
    snapshot = committed.snapshot()
    for tid in range(0, 205):
        expected = tid in model or tid == 0
        # base coverage: everything <= base must be in the model too
        assert snapshot.contains(tid) == (tid <= snapshot.base or tid in model)
    # Normalization invariant: base+1 is never completed.
    assert snapshot.base + 1 not in model


@given(tid_sets)
def test_base_is_longest_prefix(tids):
    committed = CommittedSet()
    for tid in tids:
        committed.mark_completed(tid)
    model = set(tids)
    expected_base = 0
    while expected_base + 1 in model:
        expected_base += 1
    assert committed.base == expected_base


@given(tid_sets, tid_sets)
def test_union_is_set_union(tids_a, tids_b):
    a = CommittedSet()
    for tid in tids_a:
        a.mark_completed(tid)
    b = CommittedSet()
    for tid in tids_b:
        b.mark_completed(tid)
    union = a.snapshot().union(b.snapshot())
    for tid in range(0, 205):
        assert union.contains(tid) == (
            a.snapshot().contains(tid) or b.snapshot().contains(tid)
        )


@given(tid_sets, tid_sets)
def test_issubset_matches_set_semantics(tids_a, tids_b):
    a = CommittedSet()
    for tid in tids_a:
        a.mark_completed(tid)
    b = CommittedSet()
    for tid in tids_b + tids_a:
        b.mark_completed(tid)
    # b contains everything in a, so a ⊆ b must hold.
    assert a.snapshot().issubset(b.snapshot())


@given(tid_sets, st.integers(min_value=1, max_value=200))
def test_issubset_detects_missing_member(tids, extra):
    a = CommittedSet()
    for tid in tids:
        a.mark_completed(tid)
    bigger = CommittedSet()
    for tid in tids:
        bigger.mark_completed(tid)
    bigger.mark_completed(extra)
    grown = a.snapshot().with_completed(extra + 1)
    # A snapshot containing extra+1 is only a subset of one that has it.
    if not bigger.snapshot().contains(extra + 1):
        assert not grown.issubset(bigger.snapshot())
