"""Tests for SQL execution through the embedded database."""

import pytest

from repro.api import Database
from repro.errors import (
    DuplicateKey,
    SchemaError,
    SqlPlanError,
    TransactionAborted,
)


@pytest.fixture
def session():
    db = Database(storage_nodes=2)
    session = db.session()
    session.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT NOT NULL, "
        "dept TEXT, salary DECIMAL, boss INT)"
    )
    session.execute("CREATE INDEX emp_dept ON emp (dept)")
    session.execute(
        "INSERT INTO emp VALUES "
        "(1, 'ann', 'eng', 120, NULL), "
        "(2, 'bob', 'eng', 100, 1), "
        "(3, 'cat', 'sales', 90, 1), "
        "(4, 'dan', 'sales', 80, 3), "
        "(5, 'eve', NULL, 70, 3)"
    )
    return session


class TestSelect:
    def test_projection_and_order(self, session):
        rows = session.query("SELECT name FROM emp ORDER BY salary DESC")
        assert [r["name"] for r in rows] == ["ann", "bob", "cat", "dan", "eve"]

    def test_where_point_lookup(self, session):
        rows = session.query("SELECT name FROM emp WHERE id = 3")
        assert rows == [{"name": "cat"}]

    def test_where_secondary_index(self, session):
        rows = session.query(
            "SELECT name FROM emp WHERE dept = 'eng' ORDER BY id"
        )
        assert [r["name"] for r in rows] == ["ann", "bob"]

    def test_where_range(self, session):
        rows = session.query(
            "SELECT name FROM emp WHERE salary >= 90 AND salary < 120 ORDER BY id"
        )
        assert [r["name"] for r in rows] == ["bob", "cat"]

    def test_where_between_and_in(self, session):
        rows = session.query(
            "SELECT id FROM emp WHERE salary BETWEEN 80 AND 100 "
            "AND dept IN ('eng', 'sales') ORDER BY id"
        )
        assert [r["id"] for r in rows] == [2, 3, 4]

    def test_like(self, session):
        rows = session.query("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY id")
        assert [r["name"] for r in rows] == ["ann", "cat", "dan"]

    def test_null_semantics(self, session):
        rows = session.query("SELECT id FROM emp WHERE dept IS NULL")
        assert rows == [{"id": 5}]
        # NULL comparisons never match
        rows = session.query("SELECT id FROM emp WHERE dept = 'x' OR boss = 99")
        assert rows == []

    def test_expressions(self, session):
        rows = session.query(
            "SELECT name, salary * 2 AS double_pay FROM emp WHERE id = 1"
        )
        assert rows == [{"name": "ann", "double_pay": 240.0}]

    def test_scalar_functions(self, session):
        rows = session.query(
            "SELECT UPPER(name) AS u, ABS(0 - salary) AS a FROM emp WHERE id = 1"
        )
        assert rows == [{"u": "ANN", "a": 120.0}]

    def test_limit(self, session):
        rows = session.query("SELECT id FROM emp ORDER BY id LIMIT 2")
        assert [r["id"] for r in rows] == [1, 2]

    def test_distinct(self, session):
        rows = session.query(
            "SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL ORDER BY dept"
        )
        assert [r["dept"] for r in rows] == ["eng", "sales"]

    def test_select_without_from(self, session):
        rows = session.query("SELECT 1 + 1 AS two")
        assert rows == [{"two": 2}]

    def test_unknown_column_rejected(self, session):
        with pytest.raises(SqlPlanError):
            session.query("SELECT nope FROM emp")

    def test_unknown_table_rejected(self, session):
        with pytest.raises(SchemaError):
            session.query("SELECT * FROM ghost")


class TestAggregation:
    def test_global_aggregates(self, session):
        rows = session.query(
            "SELECT COUNT(*) AS n, SUM(salary) AS total, AVG(salary) AS avg, "
            "MIN(salary) AS lo, MAX(salary) AS hi FROM emp"
        )
        assert rows == [{"n": 5, "total": 460.0, "avg": 92.0, "lo": 70.0,
                         "hi": 120.0}]

    def test_count_ignores_nulls(self, session):
        rows = session.query("SELECT COUNT(dept) AS n FROM emp")
        assert rows == [{"n": 4}]

    def test_count_distinct(self, session):
        rows = session.query("SELECT COUNT(DISTINCT dept) AS n FROM emp")
        assert rows == [{"n": 2}]

    def test_group_by(self, session):
        rows = session.query(
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp "
            "WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept"
        )
        assert rows == [
            {"dept": "eng", "n": 2, "total": 220.0},
            {"dept": "sales", "n": 2, "total": 170.0},
        ]

    def test_having(self, session):
        rows = session.query(
            "SELECT dept FROM emp WHERE dept IS NOT NULL GROUP BY dept "
            "HAVING SUM(salary) > 200"
        )
        assert rows == [{"dept": "eng"}]

    def test_aggregate_on_empty_input(self, session):
        rows = session.query(
            "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp WHERE id > 100"
        )
        assert rows == [{"n": 0, "s": None}]

    def test_order_by_aggregate(self, session):
        rows = session.query(
            "SELECT dept FROM emp WHERE dept IS NOT NULL GROUP BY dept "
            "ORDER BY SUM(salary) DESC"
        )
        assert [r["dept"] for r in rows] == ["eng", "sales"]


class TestJoins:
    def test_self_join_via_index(self, session):
        rows = session.query(
            "SELECT e.name AS emp, b.name AS boss FROM emp e "
            "JOIN emp b ON b.id = e.boss ORDER BY e.id"
        )
        assert rows == [
            {"emp": "bob", "boss": "ann"},
            {"emp": "cat", "boss": "ann"},
            {"emp": "dan", "boss": "cat"},
            {"emp": "eve", "boss": "cat"},
        ]

    def test_left_join_keeps_unmatched(self, session):
        rows = session.query(
            "SELECT e.name AS emp, b.name AS boss FROM emp e "
            "LEFT JOIN emp b ON b.id = e.boss ORDER BY e.id"
        )
        assert rows[0] == {"emp": "ann", "boss": None}
        assert len(rows) == 5

    def test_join_with_filter(self, session):
        rows = session.query(
            "SELECT e.name FROM emp e JOIN emp b ON b.id = e.boss "
            "WHERE b.dept = 'sales' ORDER BY e.id"
        )
        assert [r["name"] for r in rows] == ["dan", "eve"]

    def test_join_on_non_indexed_equality(self, session):
        # dept = dept: hash join path
        rows = session.query(
            "SELECT COUNT(*) AS n FROM emp a JOIN emp b ON a.dept = b.dept"
        )
        # eng x eng (4) + sales x sales (4); NULL dept never matches
        assert rows == [{"n": 8}]

    def test_three_way_join(self, session):
        rows = session.query(
            "SELECT e.name FROM emp e "
            "JOIN emp b ON b.id = e.boss "
            "JOIN emp g ON g.id = b.boss "
            "ORDER BY e.id"
        )
        assert [r["name"] for r in rows] == ["dan", "eve"]


class TestDml:
    def test_update_with_expression(self, session):
        count = session.execute(
            "UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'"
        ).rowcount
        assert count == 2
        rows = session.query("SELECT SUM(salary) AS s FROM emp")
        assert rows == [{"s": 480.0}]

    def test_update_via_pk(self, session):
        session.execute("UPDATE emp SET name = 'anna' WHERE id = 1")
        assert session.query("SELECT name FROM emp WHERE id = 1") == [
            {"name": "anna"}
        ]

    def test_delete(self, session):
        session.execute("DELETE FROM emp WHERE salary < 90")
        rows = session.query("SELECT COUNT(*) AS n FROM emp")
        assert rows == [{"n": 3}]

    def test_insert_with_defaults_and_nulls(self, session):
        session.execute("INSERT INTO emp (id, name) VALUES (10, 'zoe')")
        rows = session.query("SELECT dept, salary FROM emp WHERE id = 10")
        assert rows == [{"dept": None, "salary": None}]

    def test_not_null_enforced(self, session):
        with pytest.raises(SchemaError):
            session.execute("INSERT INTO emp (id) VALUES (11)")

    def test_duplicate_pk_rejected(self, session):
        with pytest.raises(DuplicateKey):
            session.execute("INSERT INTO emp (id, name) VALUES (1, 'dup')")

    def test_pk_update_finds_row_under_new_key(self, session):
        session.execute("UPDATE emp SET id = 100 WHERE id = 5")
        assert session.query("SELECT name FROM emp WHERE id = 100") == [
            {"name": "eve"}
        ]
        assert session.query("SELECT name FROM emp WHERE id = 5") == []

    def test_parameterized_statements(self, session):
        session.execute(
            "INSERT INTO emp VALUES (?, ?, ?, ?, ?)",
            [20, "pam", "eng", 95.0, None],
        )
        rows = session.query("SELECT name FROM emp WHERE id = ?", [20])
        assert rows == [{"name": "pam"}]


class TestTransactions:
    def test_explicit_commit(self, session):
        session.execute("BEGIN")
        session.execute("UPDATE emp SET salary = 0 WHERE id = 1")
        session.execute("COMMIT")
        assert session.query("SELECT salary FROM emp WHERE id = 1") == [
            {"salary": 0.0}
        ]

    def test_rollback_reverts(self, session):
        session.execute("BEGIN")
        session.execute("DELETE FROM emp")
        assert session.query("SELECT COUNT(*) AS n FROM emp") == [{"n": 0}]
        session.execute("ROLLBACK")
        assert session.query("SELECT COUNT(*) AS n FROM emp") == [{"n": 5}]

    def test_conflicting_sessions(self, session):
        db_session_b = Database.__new__(Database)  # placeholder, not used
        # Two sessions on the same database conflict on the same row.
        other = _second_session(session)
        session.execute("BEGIN")
        other.execute("BEGIN")
        session.execute("UPDATE emp SET salary = 1 WHERE id = 2")
        other.execute("UPDATE emp SET salary = 2 WHERE id = 2")
        session.execute("COMMIT")
        with pytest.raises(TransactionAborted):
            other.execute("COMMIT")

    def test_snapshot_reads_inside_transaction(self, session):
        other = _second_session(session)
        session.execute("BEGIN")
        session.query("SELECT salary FROM emp WHERE id = 1")
        other.execute("UPDATE emp SET salary = 555 WHERE id = 1")
        rows = session.query("SELECT salary FROM emp WHERE id = 1")
        assert rows == [{"salary": 120.0}]  # snapshot unchanged
        session.execute("COMMIT")
        rows = session.query("SELECT salary FROM emp WHERE id = 1")
        assert rows == [{"salary": 555.0}]


def _second_session(session):
    """Another session against the same database (shares the cluster)."""
    from repro.sql.session import Session
    from repro.sql.table import IndexManager
    from repro.api.runner import DirectRunner, Router
    from repro.core.processing_node import ProcessingNode

    cluster = session.runner.router.cluster
    cm = session.runner.router.commit_manager
    pn = ProcessingNode(77)
    return Session(pn, DirectRunner(Router(cluster, cm, pn_id=77)),
                   IndexManager())
