"""Additional SQL surface coverage: composite keys, functions, plans."""

import pytest

from repro.api import Database
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse


@pytest.fixture
def session():
    db = Database(storage_nodes=2)
    session = db.session()
    session.execute(
        "CREATE TABLE readings ("
        "  station INT, day INT, metric TEXT, value DECIMAL,"
        "  PRIMARY KEY (station, day, metric)"
        ")"
    )
    rows = []
    for station in (1, 2):
        for day in range(1, 6):
            for metric in ("temp", "rain"):
                value = station * 100 + day + (0.5 if metric == "rain" else 0)
                rows.append(f"({station}, {day}, '{metric}', {value})")
    session.execute("INSERT INTO readings VALUES " + ", ".join(rows))
    return session


class TestCompositeKeys:
    def test_full_key_lookup(self, session):
        rows = session.query(
            "SELECT value FROM readings "
            "WHERE station = 2 AND day = 3 AND metric = 'temp'"
        )
        assert rows == [{"value": 203.0}]

    def test_prefix_range_scan(self, session):
        rows = session.query(
            "SELECT day, metric FROM readings WHERE station = 1 AND day = 2 "
            "ORDER BY metric"
        )
        assert [r["metric"] for r in rows] == ["rain", "temp"]

    def test_prefix_plus_range(self, session):
        rows = session.query(
            "SELECT COUNT(*) AS n FROM readings "
            "WHERE station = 1 AND day >= 2 AND day <= 4"
        )
        assert rows == [{"n": 6}]

    def test_composite_pk_uniqueness(self, session):
        from repro.errors import DuplicateKey, TransactionAborted

        with pytest.raises((DuplicateKey, TransactionAborted)):
            session.execute(
                "INSERT INTO readings VALUES (1, 1, 'temp', 0)"
            )

    def test_update_by_composite_key(self, session):
        session.execute(
            "UPDATE readings SET value = 0 "
            "WHERE station = 1 AND day = 1 AND metric = 'rain'"
        )
        rows = session.query(
            "SELECT value FROM readings "
            "WHERE station = 1 AND day = 1 AND metric = 'rain'"
        )
        assert rows == [{"value": 0.0}]


class TestExpressionsAndFunctions:
    def test_coalesce_and_round(self, session):
        rows = session.query(
            "SELECT COALESCE(NULL, NULL, 7) AS c, ROUND(3.14159, 2) AS r"
        )
        assert rows == [{"c": 7, "r": 3.14}]

    def test_substr_and_length(self, session):
        rows = session.query(
            "SELECT SUBSTR('hello world', 7) AS tail, LENGTH('abc') AS n"
        )
        assert rows == [{"tail": "world", "n": 3}]

    def test_arithmetic_with_nulls(self, session):
        rows = session.query("SELECT 1 + NULL AS x, NULL / 2 AS y")
        assert rows == [{"x": None, "y": None}]

    def test_not_and_boolean_literals(self, session):
        rows = session.query("SELECT NOT TRUE AS f, NOT FALSE AS t")
        assert rows == [{"f": False, "t": True}]

    def test_in_with_params(self, session):
        rows = session.query(
            "SELECT COUNT(*) AS n FROM readings "
            "WHERE station = ? AND metric IN (?, ?)",
            [1, "temp", "fog"],
        )
        assert rows == [{"n": 5}]

    def test_order_by_alias_and_expression(self, session):
        rows = session.query(
            "SELECT station, SUM(value) AS total FROM readings "
            "GROUP BY station ORDER BY total DESC"
        )
        assert [r["station"] for r in rows] == [2, 1]

    def test_group_by_expression(self, session):
        rows = session.query(
            "SELECT day / 3 AS bucket, COUNT(*) AS n FROM readings "
            "WHERE station = 1 GROUP BY day / 3 ORDER BY bucket"
        )
        assert sum(r["n"] for r in rows) == 10


class TestParsingExtras:
    def test_for_update_parses(self):
        stmt = parse("SELECT * FROM t WHERE id = 1 FOR UPDATE")
        assert isinstance(stmt, ast.Select) and stmt.for_update

    def test_for_update_default_false(self):
        assert parse("SELECT * FROM t").for_update is False

    def test_multiline_statement(self):
        stmt = parse(
            """
            SELECT a,       -- projection
                   b
            FROM t
            WHERE a > 1     -- filter
            """
        )
        assert isinstance(stmt, ast.Select)


class TestResultSet:
    def test_scalar_and_iteration(self, session):
        result = session.execute("SELECT COUNT(*) AS n FROM readings")
        assert result.scalar() == 20
        assert list(result) == [(20,)]
        assert len(result) == 1

    def test_rowcount_for_dml(self, session):
        result = session.execute(
            "UPDATE readings SET value = value + 1 WHERE station = 1"
        )
        assert result.rowcount == 10
