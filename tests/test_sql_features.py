"""Tests for INSERT..SELECT, UNIQUE columns, and executemany."""

import pytest

from repro.api import Database
from repro.errors import DuplicateKey, SqlPlanError, TransactionAborted


@pytest.fixture
def session():
    db = Database(storage_nodes=2)
    session = db.session()
    session.execute("CREATE TABLE src (id INT PRIMARY KEY, v INT, tag TEXT)")
    session.executemany(
        "INSERT INTO src VALUES (?, ?, ?)",
        [(i, i * 10, "hot" if i % 2 == 0 else "cold") for i in range(10)],
    )
    return session


class TestInsertSelect:
    def test_basic_copy(self, session):
        session.execute("CREATE TABLE dst (id INT PRIMARY KEY, v INT, tag TEXT)")
        count = session.execute("INSERT INTO dst SELECT * FROM src").rowcount
        assert count == 10
        assert session.query("SELECT SUM(v) AS s FROM dst") == [{"s": 450}]

    def test_filtered_projection(self, session):
        session.execute("CREATE TABLE hot (id INT PRIMARY KEY, v INT)")
        count = session.execute(
            "INSERT INTO hot (id, v) SELECT id, v FROM src WHERE tag = 'hot'"
        ).rowcount
        assert count == 5

    def test_with_expressions(self, session):
        session.execute("CREATE TABLE doubled (id INT PRIMARY KEY, v INT)")
        session.execute(
            "INSERT INTO doubled (id, v) SELECT id, v * 2 FROM src WHERE id < 3"
        )
        rows = session.query("SELECT v FROM doubled ORDER BY id")
        assert [r["v"] for r in rows] == [0, 20, 40]

    def test_column_count_mismatch(self, session):
        session.execute("CREATE TABLE narrow (id INT PRIMARY KEY)")
        with pytest.raises(SqlPlanError):
            session.execute("INSERT INTO narrow SELECT id, v FROM src")

    def test_atomicity_on_duplicate(self, session):
        session.execute("CREATE TABLE dst (id INT PRIMARY KEY, v INT, tag TEXT)")
        session.execute("INSERT INTO dst VALUES (3, 0, 'x')")
        with pytest.raises((DuplicateKey, TransactionAborted)):
            session.execute("INSERT INTO dst SELECT * FROM src")
        # all-or-nothing: only the pre-existing row remains
        assert session.query("SELECT COUNT(*) AS n FROM dst") == [{"n": 1}]


class TestUniqueColumns:
    def test_unique_column_enforced(self, session):
        session.execute(
            "CREATE TABLE users (id INT PRIMARY KEY, email TEXT UNIQUE)"
        )
        session.execute("INSERT INTO users VALUES (1, 'a@example.com')")
        with pytest.raises((DuplicateKey, TransactionAborted)):
            session.execute("INSERT INTO users VALUES (2, 'a@example.com')")

    def test_unique_column_creates_index(self, session):
        session.execute(
            "CREATE TABLE users (id INT PRIMARY KEY, email TEXT UNIQUE)"
        )
        plan = "\n".join(
            session.explain("SELECT * FROM users WHERE email = 'x'")
        )
        assert "users_email_unique" in plan

    def test_unique_allows_distinct_values(self, session):
        session.execute(
            "CREATE TABLE users (id INT PRIMARY KEY, email TEXT UNIQUE)"
        )
        session.execute(
            "INSERT INTO users VALUES (1, 'a@x'), (2, 'b@x'), (3, NULL)"
        )
        assert session.query("SELECT COUNT(*) AS n FROM users") == [{"n": 3}]


class TestExecutemany:
    def test_atomic_batch(self, session):
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with pytest.raises((DuplicateKey, TransactionAborted)):
            session.executemany(
                "INSERT INTO t VALUES (?)", [(1,), (2,), (1,)]
            )
        assert session.query("SELECT COUNT(*) AS n FROM t") == [{"n": 0}]

    def test_returns_total_rowcount(self, session):
        count = session.executemany(
            "UPDATE src SET v = v + 1 WHERE id = ?", [(0,), (1,), (99,)]
        )
        assert count == 2

    def test_inside_explicit_transaction(self, session):
        session.execute("BEGIN")
        session.executemany(
            "UPDATE src SET v = 0 WHERE id = ?", [(0,), (1,)]
        )
        session.execute("ROLLBACK")
        assert session.query("SELECT v FROM src WHERE id = 1") == [{"v": 10}]
