"""Model-based testing: the SQL engine against a plain-dict oracle.

Hypothesis drives random INSERT/UPDATE/DELETE sequences against both the
real database and an in-memory dict model, then checks that a battery of
SELECT shapes (point lookup, secondary-index lookup, range, scan,
aggregate) returns exactly what the model predicts.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Database

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(min_value=0, max_value=30),   # id
            st.integers(min_value=-50, max_value=50),  # v
            st.sampled_from(["red", "green", "blue", None]),
        ),
        st.tuples(
            st.just("update"),
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=-50, max_value=50),
            st.sampled_from(["red", "green", "blue", None]),
        ),
        st.tuples(
            st.just("delete"),
            st.integers(min_value=0, max_value=30),
            st.just(0),
            st.just(None),
        ),
    ),
    max_size=40,
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=operations)
def test_sql_engine_matches_dict_model(operations):
    db = Database(storage_nodes=2)
    session = db.session()
    session.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, v INT, color TEXT)"
    )
    session.execute("CREATE INDEX t_color ON t (color)")
    model = {}

    for op, key, value, color in operations:
        if op == "insert":
            if key in model:
                continue  # the engine would raise DuplicateKey; model skips
            session.execute(
                "INSERT INTO t VALUES (?, ?, ?)", [key, value, color]
            )
            model[key] = (value, color)
        elif op == "update":
            session.execute(
                "UPDATE t SET v = ?, color = ? WHERE id = ?",
                [value, color, key],
            )
            if key in model:
                model[key] = (value, color)
        else:
            session.execute("DELETE FROM t WHERE id = ?", [key])
            model.pop(key, None)

    # full scan
    rows = session.query("SELECT id, v, color FROM t ORDER BY id")
    assert [(r["id"], r["v"], r["color"]) for r in rows] == [
        (key, *model[key]) for key in sorted(model)
    ]

    # point lookups (hit and miss)
    for key in (0, 7, 15, 30):
        rows = session.query("SELECT v FROM t WHERE id = ?", [key])
        if key in model:
            assert rows == [{"v": model[key][0]}]
        else:
            assert rows == []

    # secondary-index lookups
    for color in ("red", "green", "blue"):
        rows = session.query(
            "SELECT id FROM t WHERE color = ? ORDER BY id", [color]
        )
        expected = sorted(k for k, (_v, c) in model.items() if c == color)
        assert [r["id"] for r in rows] == expected

    # range predicate
    rows = session.query("SELECT id FROM t WHERE id >= 10 AND id < 20 ORDER BY id")
    assert [r["id"] for r in rows] == sorted(
        k for k in model if 10 <= k < 20
    )

    # aggregates
    rows = session.query("SELECT COUNT(*) AS n, SUM(v) AS s FROM t")
    expected_sum = sum(v for v, _c in model.values()) if model else None
    assert rows == [{"n": len(model), "s": expected_sum}]

    # NULL handling in the index
    rows = session.query("SELECT COUNT(*) AS n FROM t WHERE color IS NULL")
    assert rows == [{"n": sum(1 for _v, c in model.values() if c is None)}]
