"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import tokenize
from repro.sql.parser import parse


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select SeLeCt SELECT")
        assert all(t.kind == "KEYWORD" and t.value == "SELECT"
                   for t in tokens[:-1])

    def test_identifiers_lowercased(self):
        tokens = tokenize("MyTable")
        assert tokens[0].kind == "IDENT" and tokens[0].value == "mytable"

    def test_numbers(self):
        tokens = tokenize("42 3.14 .5")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.14
        assert tokens[2].value == 0.5

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "STRING" and tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment here\n 1")
        assert [t.kind for t in tokens] == ["KEYWORD", "NUMBER", "EOF"]

    def test_two_char_symbols(self):
        tokens = tokenize("<= >= <> !=")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "!="]

    def test_unknown_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestSelectParsing:
    def test_simple(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.table.name == "t"
        assert len(stmt.items) == 2

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items[0].star

    def test_table_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].table_star == "t"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.table.alias == "u"

    def test_where_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT 1 + 2 * 3")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        stmt = parse("SELECT (1 + 2) * 3")
        assert stmt.items[0].expr.op == "*"

    def test_joins(self):
        stmt = parse(
            "SELECT * FROM a JOIN b ON a.id = b.id "
            "LEFT JOIN c ON b.id = c.id"
        )
        assert len(stmt.joins) == 2
        assert stmt.joins[0].kind == "inner"
        assert stmt.joins[1].kind == "left"

    def test_group_having_order_limit(self):
        stmt = parse(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 "
            "ORDER BY a DESC, b LIMIT 10"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0][1] is True   # DESC
        assert stmt.order_by[1][1] is False  # implicit ASC
        assert stmt.limit == 10

    def test_in_between_like_isnull(self):
        stmt = parse(
            "SELECT * FROM t WHERE a IN (1,2) AND b BETWEEN 1 AND 5 "
            "AND c LIKE 'x%' AND d IS NOT NULL AND e NOT IN (3)"
        )
        assert stmt.where is not None

    def test_params(self):
        stmt = parse("SELECT * FROM t WHERE a = ? AND b = ?")
        conj = stmt.where
        assert conj.left.right.index == 0
        assert conj.right.right.index == 1

    def test_functions(self):
        stmt = parse("SELECT COUNT(*), SUM(a), COUNT(DISTINCT b) FROM t")
        assert stmt.items[0].expr.star
        assert stmt.items[1].expr.name == "sum"
        assert stmt.items[2].expr.distinct

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_negative_numbers(self):
        stmt = parse("SELECT -5, -a FROM t")
        assert isinstance(stmt.items[0].expr, ast.UnaryOp)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 FROM t garbage extra tokens ,")

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 FROM t LIMIT 'x'")


class TestDmlParsing:
    def test_insert_with_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse("INSERT INTO t VALUES (1, 2)")
        assert stmt.columns is None

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE id = 3")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a < 5")
        assert stmt.table == "t"

    def test_delete_without_where(self):
        stmt = parse("DELETE FROM t")
        assert stmt.where is None


class TestDdlParsing:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t (id INT NOT NULL, name VARCHAR(20) DEFAULT 'x', "
            "amount DECIMAL(12,2), PRIMARY KEY (id))"
        )
        assert stmt.name == "t"
        assert len(stmt.columns) == 3
        assert stmt.primary_key == ["id"]
        assert stmt.columns[0].nullable is False
        assert stmt.columns[1].default == "x"

    def test_inline_primary_key(self):
        stmt = parse("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        assert stmt.primary_key == ["id"]

    def test_composite_primary_key(self):
        stmt = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.primary_key == ["a", "b"]

    def test_missing_primary_key_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE TABLE t (a INT)")

    def test_create_index(self):
        stmt = parse("CREATE INDEX idx ON t (a, b)")
        assert stmt.columns == ["a", "b"] and not stmt.unique

    def test_create_unique_index(self):
        assert parse("CREATE UNIQUE INDEX idx ON t (a)").unique

    def test_drop_table(self):
        assert parse("DROP TABLE t").name == "t"


class TestTransactionStatements:
    def test_begin_commit_rollback(self):
        assert isinstance(parse("BEGIN"), ast.BeginStmt)
        assert isinstance(parse("COMMIT"), ast.CommitStmt)
        assert isinstance(parse("ROLLBACK"), ast.RollbackStmt)
        assert isinstance(parse("ABORT"), ast.RollbackStmt)

    def test_semicolon_tolerated(self):
        assert isinstance(parse("COMMIT;"), ast.CommitStmt)
