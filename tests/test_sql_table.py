"""Tests for the table layer: index maintenance, entry GC, batched gets."""

import pytest

from repro.api import Database
from repro.sql.keyenc import encode_key


@pytest.fixture
def env():
    db = Database(storage_nodes=2)
    session = db.session()
    session.execute(
        "CREATE TABLE acc (id INT PRIMARY KEY, owner TEXT, amount INT)"
    )
    session.execute("CREATE INDEX acc_owner ON acc (owner)")
    session.execute(
        "INSERT INTO acc VALUES (1, 'ann', 10), (2, 'bob', 20), (3, 'ann', 30)"
    )
    return db, session


def tree_entries(session, index_name):
    index = session.catalog.indexes[index_name]
    tree = session.indexes.tree(index)
    return session.runner.run(tree.all_entries())


class TestIndexMaintenance:
    def test_old_index_entry_survives_key_update(self, env):
        """After a key-column update, the old entry must remain: older
        snapshots still reach the old version through it (Section 5.4)."""
        db, session = env
        session.execute("UPDATE acc SET owner = 'zoe' WHERE id = 1")
        owners = [entry[0] for entry in tree_entries(session, "acc_owner")]
        assert encode_key(("ann",)) in owners  # stale entry still there
        assert encode_key(("zoe",)) in owners

    def test_old_snapshot_reads_via_stale_entry(self, env):
        db, session = env
        reader = db.session()
        reader.execute("BEGIN")
        # Pin a snapshot, then change the key from another session.
        assert len(reader.query("SELECT id FROM acc WHERE owner = 'ann'")) == 2
        session.execute("UPDATE acc SET owner = 'zoe' WHERE id = 1")
        rows = reader.query("SELECT id FROM acc WHERE owner = 'ann' ORDER BY id")
        assert [r["id"] for r in rows] == [1, 3]
        reader.execute("COMMIT")

    def test_read_side_gc_removes_dead_entries(self, env):
        """Once no surviving version carries the key, a lookup garbage
        collects the entry (V_a \\ G = ∅)."""
        db, session = env
        session.execute("UPDATE acc SET owner = 'zoe' WHERE id = 1")
        # Old versions age out as transactions complete (lav advances).
        for _ in range(3):
            session.query("SELECT id FROM acc WHERE owner = 'ann'")
        owners = [entry[0] for entry in tree_entries(session, "acc_owner")]
        assert owners.count(encode_key(("ann",))) == 1  # only id 3 remains

    def test_deleted_row_entry_gc(self, env):
        db, session = env
        session.execute("DELETE FROM acc WHERE id = 2")
        for _ in range(3):
            session.query("SELECT id FROM acc WHERE owner = 'bob'")
        owners = [entry[0] for entry in tree_entries(session, "acc_owner")]
        assert encode_key(("bob",)) not in owners

    def test_lookup_skips_invisible_matches_without_error(self, env):
        db, session = env
        session.execute("UPDATE acc SET owner = 'zoe' WHERE id = 1")
        rows = session.query("SELECT id FROM acc WHERE owner = 'zoe'")
        assert [r["id"] for r in rows] == [1]


class TestGetMany:
    def test_get_many_returns_all(self, env):
        db, session = env
        session.execute("BEGIN")
        table = session.table("acc")
        result = session.runner.run(table.get_many([(1,), (2,), (9,)]))
        assert result[(1,)][1][1] == "ann"
        assert result[(2,)][1][1] == "bob"
        assert result[(9,)] is None
        session.execute("COMMIT")

    def test_get_many_sees_own_inserts(self, env):
        db, session = env
        session.execute("BEGIN")
        session.execute("INSERT INTO acc VALUES (50, 'new', 0)")
        table = session.table("acc")
        result = session.runner.run(table.get_many([(50,)]))
        assert result[(50,)][1][1] == "new"
        session.execute("ROLLBACK")

    def test_get_many_batches_requests(self, env):
        """All leaf fetches and record fetches are grouped (few Batch
        round trips instead of per-key traffic)."""
        db, session = env
        from repro import effects

        session.execute("BEGIN")
        table = session.table("acc")
        # warm the inner-node cache
        session.runner.run(table.get_many([(1,)]))
        generator = table.get_many([(1,), (2,), (3,)])
        requests = []
        result = None
        while True:
            try:
                request = generator.send(result)
            except StopIteration:
                break
            requests.append(request)
            result = session.runner.router.execute(request)
        batch_count = sum(1 for r in requests if isinstance(r, effects.Batch))
        assert batch_count <= 2  # one leaf batch + one record batch
        session.execute("COMMIT")


class TestScans:
    def test_scan_merges_local_writes(self, env):
        db, session = env
        session.execute("BEGIN")
        session.execute("INSERT INTO acc VALUES (4, 'new', 1)")
        session.execute("DELETE FROM acc WHERE id = 1")
        session.execute("UPDATE acc SET amount = 99 WHERE id = 2")
        rows = session.query("SELECT id, amount FROM acc ORDER BY id")
        assert rows == [
            {"id": 2, "amount": 99},
            {"id": 3, "amount": 30},
            {"id": 4, "amount": 1},
        ]
        session.execute("ROLLBACK")

    def test_index_range_with_local_rows(self, env):
        db, session = env
        session.execute("BEGIN")
        session.execute("INSERT INTO acc VALUES (10, 'ann', 5)")
        rows = session.query(
            "SELECT id FROM acc WHERE owner = 'ann' ORDER BY id"
        )
        assert [r["id"] for r in rows] == [1, 3, 10]
        session.execute("ROLLBACK")


class TestUniqueness:
    def test_reinsert_after_delete(self, env):
        """Deleting a row frees its unique key for reuse -- requires the
        dead-entry GC in the unique pre-check."""
        db, session = env
        session.execute("DELETE FROM acc WHERE id = 1")
        session.execute("INSERT INTO acc VALUES (1, 'again', 7)")
        rows = session.query("SELECT owner FROM acc WHERE id = 1")
        assert rows == [{"owner": "again"}]

    def test_concurrent_unique_inserts_one_wins(self, env):
        db, session = env
        from repro.errors import DuplicateKey, TransactionAborted

        a = db.session()
        b = db.session()
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("INSERT INTO acc VALUES (77, 'a', 0)")
        b.execute("INSERT INTO acc VALUES (77, 'b', 0)")
        a.execute("COMMIT")
        with pytest.raises((DuplicateKey, TransactionAborted)):
            b.execute("COMMIT")
        rows = session.query("SELECT owner FROM acc WHERE id = 77")
        assert rows == [{"owner": "a"}]
