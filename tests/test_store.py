"""Tests for the storage substrate: nodes, LL/SC, partitioning, batches."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import effects
from repro.errors import KeyNotFound, NoCapacity, NodeUnavailable
from repro.store.cell import approx_size
from repro.store.cluster import StorageCluster
from repro.store.node import StorageNode
from repro.store.partition import HashPartitioner, PartitionMap, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_spreads_keys(self):
        values = {stable_hash((1, i)) % 64 for i in range(1000)}
        assert len(values) == 64

    def test_types(self):
        for key in (1, "x", b"y", (1, "x"), None, True):
            assert isinstance(stable_hash(key), int)

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])


class TestPartitionMap:
    def test_round_robin_masters_balanced(self):
        pmap = PartitionMap(12, [0, 1, 2], replication_factor=1)
        counts = {n: len(pmap.partitions_mastered_by(n)) for n in (0, 1, 2)}
        assert set(counts.values()) == {4}

    def test_replicas_distinct_nodes(self):
        pmap = PartitionMap(9, [0, 1, 2], replication_factor=3)
        for pid in range(9):
            replicas = pmap.replicas_of(pid)
            assert len(set(replicas)) == 3

    def test_rf_exceeding_nodes_rejected(self):
        from repro.errors import InvalidState

        with pytest.raises(InvalidState):
            PartitionMap(4, [0, 1], replication_factor=3)

    def test_fail_over_promotes_backup(self):
        pmap = PartitionMap(6, [0, 1, 2], replication_factor=2)
        mastered = pmap.partitions_mastered_by(0)
        degraded = pmap.fail_over(0, [1, 2])
        for pid in mastered:
            assert pmap.master_of(pid) != 0
        assert set(degraded) >= set(mastered)

    def test_fail_over_last_replica_raises(self):
        pmap = PartitionMap(2, [0, 1], replication_factor=1)
        victim = pmap.master_of(0)
        with pytest.raises(NodeUnavailable):
            pmap.fail_over(victim, [n for n in (0, 1) if n != victim])

    def test_pick_new_host_avoids_current(self):
        pmap = PartitionMap(3, [0, 1, 2], replication_factor=2)
        current = set(pmap.replicas_of(0))
        choice = pmap.pick_new_host(0, [0, 1, 2])
        assert choice not in current


class TestStorageNode:
    def test_put_get_roundtrip(self):
        node = StorageNode(0)
        node.host_partition(0)
        version, _ = node.do_put(0, "data", "k", "v")
        assert version == 1
        (value, cell_version), _ = node.do_get(0, "data", "k")
        assert value == "v" and cell_version == 1

    def test_get_missing(self):
        node = StorageNode(0)
        node.host_partition(0)
        (value, version), _ = node.do_get(0, "data", "nope")
        assert value is None and version == 0

    def test_version_increments_every_write(self):
        node = StorageNode(0)
        node.host_partition(0)
        for expected in (1, 2, 3):
            version, _ = node.do_put(0, "data", "k", f"v{expected}")
            assert version == expected

    def test_ll_sc_success_and_failure(self):
        node = StorageNode(0)
        node.host_partition(0)
        node.do_put(0, "data", "k", "v1")
        (ok, version), _ = node.do_put_if_version(0, "data", "k", "v2", 1)
        assert ok and version == 2
        (ok, current), _ = node.do_put_if_version(0, "data", "k", "v3", 1)
        assert not ok and current == 2

    def test_ll_sc_aba_immunity(self):
        """A value changed and changed back still fails the conditional
        write -- the property CAS lacks and LL/SC provides."""
        node = StorageNode(0)
        node.host_partition(0)
        node.do_put(0, "data", "k", "A")          # version 1
        node.do_put(0, "data", "k", "B")          # version 2
        node.do_put(0, "data", "k", "A")          # version 3, value back to A
        (ok, current), _ = node.do_put_if_version(0, "data", "k", "C", 1)
        assert not ok and current == 3

    def test_ll_sc_insert_expects_zero(self):
        node = StorageNode(0)
        node.host_partition(0)
        (ok, version), _ = node.do_put_if_version(0, "data", "new", "v", 0)
        assert ok and version == 1
        (ok, _), _ = node.do_put_if_version(0, "data", "new", "v2", 0)
        assert not ok

    def test_delete(self):
        node = StorageNode(0)
        node.host_partition(0)
        node.do_put(0, "data", "k", "v")
        deleted, _ = node.do_delete(0, "data", "k")
        assert deleted
        deleted, _ = node.do_delete(0, "data", "k")
        assert not deleted

    def test_delete_if_version(self):
        node = StorageNode(0)
        node.host_partition(0)
        node.do_put(0, "data", "k", "v")
        (ok, _), _ = node.do_delete_if_version(0, "data", "k", 99)
        assert not ok
        (ok, _), _ = node.do_delete_if_version(0, "data", "k", 1)
        assert ok

    def test_increment(self):
        node = StorageNode(0)
        node.host_partition(0)
        value, _ = node.do_increment(0, "meta", "counter", 5)
        assert value == 5
        value, _ = node.do_increment(0, "meta", "counter", 3)
        assert value == 8

    def test_scan_sorted_with_bounds_and_limit(self):
        node = StorageNode(0)
        node.host_partition(0)
        for key in (5, 1, 9, 3, 7):
            node.do_put(0, "data", key, f"v{key}")
        rows, _ = node.do_scan(0, "data", 3, 9, None)
        assert [key for key, _v, _c in rows] == [3, 5, 7]
        rows, _ = node.do_scan(0, "data", None, None, 2)
        assert [key for key, _v, _c in rows] == [1, 3]

    def test_scan_cache_invalidation_on_write(self):
        node = StorageNode(0)
        node.host_partition(0)
        node.do_put(0, "data", 1, "a")
        node.do_scan(0, "data", None, None, None)
        node.do_put(0, "data", 2, "b")
        rows, _ = node.do_scan(0, "data", None, None, None)
        assert len(rows) == 2

    def test_capacity_limit(self):
        node = StorageNode(0, capacity_bytes=64)
        node.host_partition(0)
        with pytest.raises(NoCapacity):
            node.do_put(0, "data", "k", "x" * 1000)

    def test_memory_accounting_on_delete(self):
        node = StorageNode(0)
        node.host_partition(0)
        node.do_put(0, "data", "k", "x" * 100)
        used = node.bytes_used
        assert used > 100
        node.do_delete(0, "data", "k")
        assert node.bytes_used == 0

    def test_crash_drops_data(self):
        node = StorageNode(0)
        node.host_partition(0)
        node.do_put(0, "data", "k", "v")
        node.crash()
        assert not node.alive
        with pytest.raises(NodeUnavailable):
            node.do_get(0, "data", "k")

    def test_unknown_partition(self):
        node = StorageNode(0)
        with pytest.raises(KeyNotFound):
            node.do_get(42, "data", "k")


class TestStorageCluster:
    def test_execute_put_get(self, cluster):
        cluster.execute(effects.Put("data", "k", "v"))
        assert cluster.execute(effects.Get("data", "k")) == ("v", 1)

    def test_batch_preserves_order(self, cluster):
        for i in range(10):
            cluster.execute(effects.Put("data", i, f"v{i}"))
        results = cluster.execute(effects.multi_get("data", list(range(10))))
        assert [value for value, _v in results] == [f"v{i}" for i in range(10)]

    def test_scan_across_partitions(self, cluster):
        for i in range(50):
            cluster.execute(effects.Put("data", i, i * 10))
        rows = cluster.execute(effects.Scan("data", 10, 20))
        assert [key for key, _v, _c in rows] == list(range(10, 20))

    def test_keys_spread_over_nodes(self, cluster):
        for i in range(200):
            cluster.execute(effects.Put("data", i, "v"))
        used = [node.bytes_used for node in cluster.nodes.values()]
        assert all(bytes_used > 0 for bytes_used in used)

    def test_replication_copies_to_backups(self, replicated_cluster):
        cluster = replicated_cluster
        cluster.execute(effects.Put("data", "k", "value"))
        pid = cluster.partition_of("k")
        for node_id in cluster.partition_map.replicas_of(pid):
            cells = cluster.nodes[node_id].partition(pid).space("data")
            assert cells["k"].value == "value"
            assert cells["k"].version == 1

    def test_replication_of_deletes(self, replicated_cluster):
        cluster = replicated_cluster
        cluster.execute(effects.Put("data", "k", "value"))
        cluster.execute(effects.Delete("data", "k"))
        pid = cluster.partition_of("k")
        for node_id in cluster.partition_map.replicas_of(pid):
            cells = cluster.nodes[node_id].partition(pid).space("data")
            assert "k" not in cells

    def test_failed_conditional_write_not_replicated(self, replicated_cluster):
        cluster = replicated_cluster
        cluster.execute(effects.Put("data", "k", "v1"))
        ok, _ = cluster.execute(effects.PutIfVersion("data", "k", "v2", 99))
        assert not ok
        pid = cluster.partition_of("k")
        for node_id in cluster.partition_map.replicas_of(pid):
            cells = cluster.nodes[node_id].partition(pid).space("data")
            assert cells["k"].value == "v1"

    def test_routing_identifies_writes(self, cluster):
        assert cluster.routing(effects.Put("data", "k", "v")).is_write
        assert not cluster.routing(effects.Get("data", "k")).is_write

    def test_add_node_for_elasticity(self, cluster):
        before = len(cluster.nodes)
        node = cluster.add_node()
        assert len(cluster.nodes) == before + 1
        assert node.alive

    def test_request_size_reflects_value(self, cluster):
        small = cluster.request_size(effects.Put("data", "k", "x"))
        large = cluster.request_size(effects.Put("data", "k", "x" * 500))
        assert large > small + 400


class TestApproxSize:
    @given(st.text(max_size=100))
    def test_strings(self, text):
        assert approx_size(text) == len(text)

    def test_nested(self):
        assert approx_size((1, "abc", None)) == 8 + 8 + 3 + 1

    def test_custom_protocol(self):
        class Sized:
            def approx_size(self):
                return 1234

        assert approx_size(Sized()) == 1234

    def test_unknown_fallback(self):
        assert approx_size(object()) == 64
