"""Tests for the TPC-C workload: parameters, population, transactions."""

import random

import pytest

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.errors import TransactionAborted
from repro.sql.table import IndexManager, Table
from repro.store.cluster import StorageCluster
from repro.workloads.loader import BulkLoader
from repro.workloads.tpcc.mixes import (
    MIXES,
    READ_INTENSIVE_MIX,
    SHARDABLE_MIX,
    STANDARD_MIX,
)
from repro.workloads.tpcc.params import (
    ParamGenerator,
    TpccScale,
    last_name,
)
from repro.workloads.tpcc.population import populate
from repro.workloads.tpcc.schema import build_tpcc_catalog
from repro.workloads.tpcc.transactions import (
    TRANSACTIONS,
    TpccContext,
    TpccRollback,
    delivery,
    new_order,
    order_status,
    payment,
    stock_level,
)

SCALE = TpccScale.tiny(2)


@pytest.fixture(scope="module")
def loaded():
    """A populated tiny TPC-C database (module-scoped: populate once)."""
    cluster = StorageCluster(n_nodes=3)
    catalog = build_tpcc_catalog()
    indexes = IndexManager()
    loader = BulkLoader(catalog, indexes)
    router = Router(cluster)
    counts = effects.run_direct(populate(catalog, loader, SCALE, seed=3), router)
    cm = CommitManager(0, cluster.execute)
    return cluster, catalog, cm, counts


@pytest.fixture
def env(loaded):
    cluster, catalog, cm, _counts = loaded
    pn = ProcessingNode(0)
    runner = DirectRunner(Router(cluster, cm, pn_id=0))
    return cluster, catalog, cm, pn, runner


def run_txn(env, txn_fn, params):
    cluster, catalog, cm, pn, runner = env
    txn = runner.run(pn.begin())
    context = TpccContext(catalog, txn, IndexManager())
    context.districts_per_warehouse = SCALE.districts_per_warehouse
    result = runner.run(txn_fn(context, params))
    runner.run(txn.commit())
    return result


def read_row(env, table_name, pk):
    cluster, catalog, cm, pn, runner = env
    txn = runner.run(pn.begin())
    table = Table(catalog.table(table_name), txn, IndexManager())
    found = runner.run(table.get(pk))
    runner.run(txn.commit())
    if found is None:
        return None
    return catalog.table(table_name).row_to_dict(found[1])


class TestParams:
    def test_last_name_syllables(self):
        assert last_name(0) == "BARBARBAR"
        assert last_name(371) == "PRICALLYOUGHT"
        assert last_name(999) == "EYINGEYINGEYING"

    def test_new_order_item_counts(self):
        gen = ParamGenerator(TpccScale.spec(10), seed=1)
        for _ in range(50):
            params = gen.new_order()
            assert 5 <= len(params.items) <= 15
            assert all(1 <= q <= 10 for _i, _w, q in params.items)
            item_ids = [i for i, _w, _q in params.items]
            assert len(set(item_ids)) == len(item_ids)

    def test_remote_rates_roughly_match_spec(self):
        gen = ParamGenerator(TpccScale.spec(10), seed=7)
        remote_orders = sum(
            1 for _ in range(2000) if not gen.new_order().all_local
        )
        # ~1% per item, 5-15 items -> ~10% of orders touch a remote WH.
        assert 0.04 < remote_orders / 2000 < 0.2
        remote_payments = sum(
            1 for _ in range(2000)
            if gen.payment().c_w_id != gen.payment().w_id
        )
        assert remote_payments > 0

    def test_shardable_has_no_remote_accesses(self):
        gen = ParamGenerator(TpccScale.spec(10), seed=5, remote_accesses=False)
        for _ in range(300):
            assert gen.new_order().all_local
            p = gen.payment()
            assert p.c_w_id == p.w_id

    def test_home_warehouse_pinning(self):
        gen = ParamGenerator(TpccScale.spec(10), seed=5, home_warehouse=3)
        assert all(gen.new_order().w_id == 3 for _ in range(20))

    def test_nurand_skew(self):
        """NURand concentrates on a subset of the key space."""
        gen = ParamGenerator(TpccScale.spec(2), seed=11)
        ids = [gen.random.customer_id() for _ in range(3000)]
        assert len(set(ids)) < 2200  # noticeably fewer than uniform

    def test_determinism(self):
        a = ParamGenerator(SCALE, seed=42).new_order()
        b = ParamGenerator(SCALE, seed=42).new_order()
        assert (a.w_id, a.d_id, a.c_id, a.items) == (
            b.w_id, b.d_id, b.c_id, b.items
        )


class TestMixes:
    def test_table2_weights(self):
        weights = dict(STANDARD_MIX.weights)
        assert weights["new_order"] == 45.0
        assert weights["payment"] == 43.0
        read_weights = dict(READ_INTENSIVE_MIX.weights)
        assert read_weights["order_status"] == 84.0

    def test_write_ratios_match_table2(self):
        assert 0.25 < STANDARD_MIX.write_ratio < 0.45   # paper: 35.84%
        assert 0.02 < READ_INTENSIVE_MIX.write_ratio < 0.08  # paper: 4.89%

    def test_shardable_is_standard_without_remote(self):
        assert SHARDABLE_MIX.weights == STANDARD_MIX.weights
        assert not SHARDABLE_MIX.remote_accesses

    def test_pick_distribution(self):
        rng = random.Random(1)
        picks = [STANDARD_MIX.pick(rng) for _ in range(5000)]
        assert 0.40 < picks.count("new_order") / 5000 < 0.50
        assert 0.38 < picks.count("payment") / 5000 < 0.48

    def test_metric_designations(self):
        assert STANDARD_MIX.throughput_metric == "tpmc"
        assert READ_INTENSIVE_MIX.throughput_metric == "tps"


class TestPopulation:
    def test_cardinalities(self, loaded):
        _cluster, _catalog, _cm, counts = loaded
        scale = SCALE
        assert counts["warehouse"] == scale.warehouses
        assert counts["district"] == scale.warehouses * scale.districts_per_warehouse
        assert counts["customer"] == (
            scale.warehouses * scale.districts_per_warehouse
            * scale.customers_per_district
        )
        assert counts["stock"] == scale.warehouses * scale.items
        assert counts["item"] == scale.items
        assert counts["orders"] == (
            scale.warehouses * scale.districts_per_warehouse
            * scale.initial_orders_per_district
        )
        assert counts["neworder"] < counts["orders"]

    def test_district_next_o_id(self, env):
        district = read_row(env, "district", (1, 1))
        assert district["d_next_o_id"] == SCALE.initial_orders_per_district + 1

    def test_customer_names_findable(self, env):
        cluster, catalog, cm, pn, runner = env
        txn = runner.run(pn.begin())
        table = Table(catalog.table("customer"), txn, IndexManager())
        index = next(i for i in table.schema.indexes if i.name == "customer_name")
        name = last_name(0)
        matches = runner.run(table.lookup(index, (1, 1, name)))
        runner.run(txn.commit())
        assert matches  # BARBARBAR always exists in a populated district


class TestNewOrder:
    def test_happy_path_effects(self, env):
        gen = ParamGenerator(SCALE, seed=21)
        params = gen.new_order()
        params.rollback = False
        district_before = read_row(env, "district", (params.w_id, params.d_id))
        result = run_txn(env, new_order, params)

        district_after = read_row(env, "district", (params.w_id, params.d_id))
        assert district_after["d_next_o_id"] == district_before["d_next_o_id"] + 1
        assert result["o_id"] == district_before["d_next_o_id"]
        assert result["total"] > 0

        order = read_row(env, "orders", (params.w_id, params.d_id, result["o_id"]))
        assert order["o_ol_cnt"] == len(params.items)
        neworder = read_row(
            env, "neworder", (params.w_id, params.d_id, result["o_id"])
        )
        assert neworder is not None
        line = read_row(
            env, "orderline", (params.w_id, params.d_id, result["o_id"], 1)
        )
        assert line["ol_i_id"] == params.items[0][0]

    def test_stock_updated(self, env):
        gen = ParamGenerator(SCALE, seed=22)
        params = gen.new_order()
        params.rollback = False
        i_id, supply_w, quantity = params.items[0]
        stock_before = read_row(env, "stock", (supply_w, i_id))
        run_txn(env, new_order, params)
        stock_after = read_row(env, "stock", (supply_w, i_id))
        assert stock_after["s_order_cnt"] == stock_before["s_order_cnt"] + 1
        assert stock_after["s_ytd"] == stock_before["s_ytd"] + quantity
        expected = stock_before["s_quantity"] - quantity
        if expected < 10:
            expected += 91
        assert stock_after["s_quantity"] == expected

    def test_one_percent_rollback(self, env):
        cluster, catalog, cm, pn, runner = env
        gen = ParamGenerator(SCALE, seed=23)
        params = gen.new_order()
        params.rollback = True
        txn = runner.run(pn.begin())
        context = TpccContext(catalog, txn, IndexManager())
        context.districts_per_warehouse = SCALE.districts_per_warehouse
        with pytest.raises(TpccRollback):
            runner.run(new_order(context, params))
        runner.run(txn.abort())
        # nothing persisted
        district = read_row(env, "district", (params.w_id, params.d_id))
        order = read_row(
            env, "orders", (params.w_id, params.d_id, district["d_next_o_id"])
        )
        assert order is None


class TestPayment:
    def test_by_id_updates_balances(self, env):
        gen = ParamGenerator(SCALE, seed=31)
        params = gen.payment()
        params.c_id = 5
        params.c_last = None
        warehouse_before = read_row(env, "warehouse", (params.w_id,))
        customer_before = read_row(
            env, "customer", (params.c_w_id, params.c_d_id, 5)
        )
        run_txn(env, payment, params)
        warehouse_after = read_row(env, "warehouse", (params.w_id,))
        customer_after = read_row(
            env, "customer", (params.c_w_id, params.c_d_id, 5)
        )
        assert warehouse_after["w_ytd"] == pytest.approx(
            warehouse_before["w_ytd"] + params.amount
        )
        assert customer_after["c_balance"] == pytest.approx(
            customer_before["c_balance"] - params.amount
        )
        assert customer_after["c_payment_cnt"] == (
            customer_before["c_payment_cnt"] + 1
        )

    def test_by_name_selects_middle_customer(self, env):
        gen = ParamGenerator(SCALE, seed=32)
        params = gen.payment()
        params.c_id = None
        params.c_last = last_name(0)
        result = run_txn(env, payment, params)
        assert result["amount"] == params.amount

    def test_history_row_written(self, env):
        cluster, catalog, cm, pn, runner = env
        gen = ParamGenerator(SCALE, seed=33)
        params = gen.payment()
        params.c_id = 1
        params.c_last = None
        run_txn(env, payment, params)
        txn = runner.run(pn.begin())
        table = Table(catalog.table("history"), txn, IndexManager())
        rows = runner.run(table.scan())
        runner.run(txn.commit())
        assert any(
            row[catalog.table("history").position("h_amount")] == params.amount
            for _rid, row in rows
        )


class TestOrderStatus:
    def test_returns_latest_order(self, env):
        gen = ParamGenerator(SCALE, seed=41)
        no_params = gen.new_order()
        no_params.rollback = False
        created = run_txn(env, new_order, no_params)
        params = gen.order_status()
        params.w_id, params.d_id = no_params.w_id, no_params.d_id
        params.c_id, params.c_last = no_params.c_id, None
        result = run_txn(env, order_status, params)
        assert result["order"]["o_id"] == created["o_id"]
        assert len(result["lines"]) == len(no_params.items)


class TestDelivery:
    def test_delivers_oldest_neworder(self, env):
        cluster, catalog, cm, pn, runner = env
        params = ParamGenerator(SCALE, seed=51).delivery()
        # find the oldest undelivered order of district 1 beforehand
        txn = runner.run(pn.begin())
        no_table = Table(catalog.table("neworder"), txn, IndexManager())
        oldest = runner.run(
            no_table.index_range(
                no_table.schema.primary_index,
                (params.w_id, 1), (params.w_id, 2), limit=1,
            )
        )
        runner.run(txn.commit())
        assert oldest, "population must leave undelivered orders"
        o_id = oldest[0][1][2]

        result = run_txn(env, delivery, params)
        assert result["delivered"] >= 1
        assert read_row(env, "neworder", (params.w_id, 1, o_id)) is None
        order = read_row(env, "orders", (params.w_id, 1, o_id))
        assert order["o_carrier_id"] == params.carrier_id
        line = read_row(env, "orderline", (params.w_id, 1, o_id, 1))
        assert line["ol_delivery_d"] is not None


class TestStockLevel:
    def test_counts_low_stock(self, env):
        params = ParamGenerator(SCALE, seed=61).stock_level()
        result = run_txn(env, stock_level, params)
        assert 0 <= result["low_stock"] <= result["distinct_items"]

    def test_read_only(self, env):
        cluster, catalog, cm, pn, runner = env
        params = ParamGenerator(SCALE, seed=62).stock_level()
        txn = runner.run(pn.begin())
        context = TpccContext(catalog, txn, IndexManager())
        context.districts_per_warehouse = SCALE.districts_per_warehouse
        runner.run(stock_level(context, params))
        assert txn.write_set == ()
        runner.run(txn.commit())


class TestDispatchTable:
    def test_all_five_registered(self):
        assert set(TRANSACTIONS) == {
            "new_order", "payment", "order_status", "delivery", "stock_level"
        }
