"""TPC-C consistency conditions after a concurrent simulated run.

The TPC-C specification defines cross-table consistency conditions that
must hold in any committed state.  Running the full simulated deployment
(dozens of interleaved terminals, real conflicts and aborts) and then
checking them end-to-end is the strongest integration test the
reproduction has: a single lost update, phantom, partial commit, or
recovery bug would break one of these equations.
"""

import pytest

from repro import effects
from repro.api.runner import Router
from repro.bench.config import TellConfig
from repro.bench.simcluster import SimulatedTell
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.api.runner import DirectRunner
from repro.sql.table import IndexManager, Table
from repro.workloads.tpcc.params import TpccScale


@pytest.fixture(scope="module")
def after_run():
    """A deployment that has executed a concurrent standard-mix burst."""
    config = TellConfig(
        processing_nodes=2,
        storage_nodes=3,
        threads_per_pn=8,
        scale=TpccScale.tiny(4),
        duration_us=120_000.0,
        warmup_us=0.0,
        seed=11,
    )
    deployment = SimulatedTell(config)
    deployment.load()
    metrics = deployment.run()
    assert metrics.total_committed > 100, "run too small to be meaningful"
    # Stopping the simulation leaves in-flight transactions like crashed
    # PNs; quiesce() runs the paper's recovery procedure on each of them.
    deployment.quiesce()
    pn = ProcessingNode(50)
    runner = DirectRunner(
        Router(deployment.cluster, deployment.commit_managers[0], pn_id=50)
    )
    return deployment, metrics, pn, runner


def all_rows(after_run, table_name):
    deployment, _metrics, pn, runner = after_run
    txn = runner.run(pn.begin())
    table = Table(deployment.catalog.table(table_name), txn, IndexManager())
    rows = runner.run(table.scan())
    runner.run(txn.commit())
    schema = deployment.catalog.table(table_name)
    return [schema.row_to_dict(row) for _rid, row in rows]


class TestTpccConsistency:
    def test_consistency_1_district_next_o_id(self, after_run):
        """d_next_o_id - 1 == max(o_id) == max(no_o_id) per district."""
        districts = all_rows(after_run, "district")
        orders = all_rows(after_run, "orders")
        for district in districts:
            w, d = district["d_w_id"], district["d_id"]
            o_ids = [o["o_id"] for o in orders
                     if o["o_w_id"] == w and o["o_d_id"] == d]
            assert max(o_ids) == district["d_next_o_id"] - 1, (
                f"district ({w},{d}) lost or duplicated an order id"
            )

    def test_consistency_2_no_order_id_gaps_or_duplicates(self, after_run):
        orders = all_rows(after_run, "orders")
        per_district = {}
        for order in orders:
            per_district.setdefault(
                (order["o_w_id"], order["o_d_id"]), []
            ).append(order["o_id"])
        for key, ids in per_district.items():
            assert sorted(ids) == list(range(1, len(ids) + 1)), (
                f"district {key} has gaps/duplicates in order ids"
            )

    def test_consistency_3_neworder_contiguous(self, after_run):
        """New-order rows form a contiguous tail of the order ids."""
        neworders = all_rows(after_run, "neworder")
        per_district = {}
        for row in neworders:
            per_district.setdefault(
                (row["no_w_id"], row["no_d_id"]), []
            ).append(row["no_o_id"])
        for key, ids in per_district.items():
            ids.sort()
            assert ids == list(range(ids[0], ids[0] + len(ids)))

    def test_consistency_4_orderline_counts(self, after_run):
        """sum(o_ol_cnt) == number of order lines per district."""
        orders = all_rows(after_run, "orders")
        lines = all_rows(after_run, "orderline")
        expected = {}
        for order in orders:
            key = (order["o_w_id"], order["o_d_id"])
            expected[key] = expected.get(key, 0) + order["o_ol_cnt"]
        actual = {}
        for line in lines:
            key = (line["ol_w_id"], line["ol_d_id"])
            actual[key] = actual.get(key, 0) + 1
        assert actual == expected

    def test_orderline_numbers_complete_per_order(self, after_run):
        orders = all_rows(after_run, "orders")
        lines = all_rows(after_run, "orderline")
        per_order = {}
        for line in lines:
            key = (line["ol_w_id"], line["ol_d_id"], line["ol_o_id"])
            per_order.setdefault(key, []).append(line["ol_number"])
        for order in orders:
            key = (order["o_w_id"], order["o_d_id"], order["o_id"])
            numbers = sorted(per_order.get(key, []))
            assert numbers == list(range(1, order["o_ol_cnt"] + 1)), (
                f"order {key} has partial order lines (atomicity violation)"
            )

    def test_warehouse_ytd_equals_district_ytds(self, after_run):
        """W_YTD == sum(D_YTD): payments hit both monotonically."""
        warehouses = all_rows(after_run, "warehouse")
        districts = all_rows(after_run, "district")
        for warehouse in warehouses:
            district_sum = sum(
                d["d_ytd"] for d in districts
                if d["d_w_id"] == warehouse["w_id"]
            )
            base = 30_000.0 * len(
                [d for d in districts if d["d_w_id"] == warehouse["w_id"]]
            )
            payments_d = district_sum - base
            payments_w = warehouse["w_ytd"] - 300_000.0
            assert payments_w == pytest.approx(payments_d, abs=0.05), (
                f"warehouse {warehouse['w_id']}: lost payment updates"
            )

    def test_no_uncommitted_versions_remain(self, after_run):
        """Every version in the store belongs to a completed transaction
        (no transaction of a finished run may remain mid-commit)."""
        deployment, _metrics, _pn, _runner = after_run
        manager = deployment.commit_managers[0]
        rows = deployment.cluster.execute(effects.Scan("data", None, None))
        for _key, record, _version in rows:
            for version in record.versions:
                assert manager.completed.contains(version.tid), (
                    f"version {version.tid} never completed"
                )

    def test_abort_rate_sane(self, after_run):
        _deployment, metrics, _pn, _runner = after_run
        assert 0.0 <= metrics.abort_rate < 0.9
