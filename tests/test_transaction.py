"""Tests for transactions: snapshot isolation semantics with LL/SC.

These exercise the life-cycle of Section 4.3 and the SI guarantees of
Section 4.1 -- including concurrent interleavings at every storage
request boundary via the ``interleave`` helper.
"""

import pytest

from repro import effects
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.core.record import TOMBSTONE
from repro.core.spaces import DATA_SPACE, data_key
from repro.core.transaction import TxnState
from repro.core.txlog import LOG_SPACE
from repro.api.runner import DirectRunner, Router
from repro.errors import (
    InvalidState,
    KeyNotFound,
    TransactionAborted,
)
from tests.conftest import interleave

K1 = data_key(1, 1)
K2 = data_key(1, 2)


@pytest.fixture
def env(cluster):
    cm = CommitManager(0, cluster.execute, tid_range_size=32)
    pn = ProcessingNode(0)
    router = Router(cluster, cm, pn_id=0)
    return cluster, cm, pn, DirectRunner(router)


def seed(runner, pn, rows):
    def logic(txn):
        for key, payload in rows.items():
            txn.insert(key, payload)
        return None
        yield

    runner.run(pn.run_transaction(logic))


class TestLifecycle:
    def test_states(self, env):
        _cluster, _cm, pn, runner = env
        txn = runner.run(pn.begin())
        assert txn.state is TxnState.RUNNING
        txn.insert(K1, ("a",))
        runner.run(txn.commit())
        assert txn.state is TxnState.COMMITTED

    def test_commit_twice_rejected(self, env):
        _c, _cm, pn, runner = env
        txn = runner.run(pn.begin())
        runner.run(txn.commit())
        with pytest.raises(InvalidState):
            runner.run(txn.commit())

    def test_manual_abort(self, env):
        cluster, _cm, pn, runner = env
        seed(runner, pn, {K1: ("x",)})
        txn = runner.run(pn.begin())
        runner.run(txn.update(K1, ("y",)))
        runner.run(txn.abort())
        assert txn.state is TxnState.ABORTED
        # nothing was applied
        check = runner.run(pn.begin())
        assert runner.run(check.read(K1)) == ("x",)

    def test_read_only_fast_path_writes_no_log(self, env):
        cluster, _cm, pn, runner = env
        seed(runner, pn, {K1: ("x",)})
        txn = runner.run(pn.begin())
        runner.run(txn.read(K1))
        runner.run(txn.commit())
        entry, _ = cluster.execute(effects.Get(LOG_SPACE, txn.tid))
        assert entry is None

    def test_committed_txn_has_committed_log_flag(self, env):
        cluster, _cm, pn, runner = env
        txn = runner.run(pn.begin())
        txn.insert(K1, ("v",))
        runner.run(txn.commit())
        entry, _ = cluster.execute(effects.Get(LOG_SPACE, txn.tid))
        assert entry.committed
        assert K1 in entry.write_set


class TestReadsAndWrites:
    def test_read_your_own_writes(self, env):
        _c, _cm, pn, runner = env
        txn = runner.run(pn.begin())
        txn.insert(K1, ("mine",))
        assert runner.run(txn.read(K1)) == ("mine",)

    def test_read_your_own_update(self, env):
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("old",)})
        txn = runner.run(pn.begin())
        runner.run(txn.update(K1, ("new",)))
        assert runner.run(txn.read(K1)) == ("new",)

    def test_read_your_own_delete(self, env):
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("old",)})
        txn = runner.run(pn.begin())
        runner.run(txn.delete(K1))
        assert runner.run(txn.read(K1)) is None

    def test_update_requires_visible_record(self, env):
        _c, _cm, pn, runner = env
        txn = runner.run(pn.begin())
        with pytest.raises(KeyNotFound):
            runner.run(txn.update(data_key(1, 999), ("x",)))

    def test_insert_then_delete_cancels(self, env):
        cluster, _cm, pn, runner = env
        txn = runner.run(pn.begin())
        txn.insert(K1, ("temp",))
        runner.run(txn.delete(K1))
        runner.run(txn.commit())
        value, _ = cluster.execute(effects.Get(DATA_SPACE, K1))
        assert value is None

    def test_multiple_updates_collapse_to_one_version(self, env):
        cluster, _cm, pn, runner = env
        seed(runner, pn, {K1: ("v0",)})
        txn = runner.run(pn.begin())
        runner.run(txn.update(K1, ("v1",)))
        runner.run(txn.update(K1, ("v2",)))
        runner.run(txn.commit())
        record, _ = cluster.execute(effects.Get(DATA_SPACE, K1))
        assert record.get(txn.tid).payload == ("v2",)
        assert len([v for v in record.versions if v.tid == txn.tid]) == 1

    def test_read_many_batches_and_dedups(self, env):
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("a",), K2: ("b",)})
        txn = runner.run(pn.begin())
        result = runner.run(txn.read_many([K1, K2, K1]))
        assert result == {K1: ("a",), K2: ("b",)}

    def test_deleted_record_invisible_to_later_snapshots(self, env):
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("x",)})

        def deleter(txn):
            yield from txn.delete(K1)

        runner.run(pn.run_transaction(deleter))
        txn = runner.run(pn.begin())
        assert runner.run(txn.read(K1)) is None


class TestSnapshotIsolation:
    def test_no_dirty_reads(self, env):
        """A concurrent transaction's buffered writes are invisible."""
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("committed",)})
        writer = runner.run(pn.begin())
        runner.run(writer.update(K1, ("uncommitted",)))
        reader = runner.run(pn.begin())
        assert runner.run(reader.read(K1)) == ("committed",)

    def test_repeatable_reads_after_concurrent_commit(self, env):
        """A snapshot keeps reading its version even after another
        transaction committed a newer one."""
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("v0",)})
        reader = runner.run(pn.begin())
        assert runner.run(reader.read(K1)) == ("v0",)

        def writer(txn):
            yield from txn.update(K1, ("v1",))

        runner.run(pn.run_transaction(writer))
        # fresh read of the same key through a *new* fetch: drop the cache
        reader._cache.clear()
        assert runner.run(reader.read(K1)) == ("v0",)

    def test_write_write_conflict_first_committer_wins(self, env):
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("v0",)})
        a = runner.run(pn.begin())
        b = runner.run(pn.begin())
        runner.run(a.update(K1, ("a",)))
        runner.run(b.update(K1, ("b",)))
        runner.run(a.commit())
        with pytest.raises(TransactionAborted):
            runner.run(b.commit())
        check = runner.run(pn.begin())
        assert runner.run(check.read(K1)) == ("a",)

    def test_conflict_scenario_two_from_paper(self, env):
        """T1 reads the item before T2 writes it: T1 must detect the
        conflict when applying (LL/SC fails)."""
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("v0",)})
        t1 = runner.run(pn.begin())
        runner.run(t1.read(K1))

        def t2_logic(txn):
            yield from txn.update(K1, ("t2",))

        runner.run(pn.run_transaction(t2_logic))
        runner.run(t1.update(K1, ("t1",)))
        with pytest.raises(TransactionAborted):
            runner.run(t1.commit())

    def test_conflict_scenario_one_from_paper(self, env):
        """T2 commits before T1 reads: T1 sees the newer version exists
        outside its snapshot and conflicts on write."""
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("v0",)})
        t1 = runner.run(pn.begin())

        def t2_logic(txn):
            yield from txn.update(K1, ("t2",))

        runner.run(pn.run_transaction(t2_logic))
        # T1's snapshot predates T2, so it still reads v0 ...
        assert runner.run(t1.read(K1)) == ("v0",)
        runner.run(t1.update(K1, ("t1",)))
        # ... and must abort at commit.
        with pytest.raises(TransactionAborted):
            runner.run(t1.commit())

    def test_disjoint_writes_both_commit(self, env):
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: ("a0",), K2: ("b0",)})
        a = runner.run(pn.begin())
        b = runner.run(pn.begin())
        runner.run(a.update(K1, ("a1",)))
        runner.run(b.update(K2, ("b1",)))
        runner.run(a.commit())
        runner.run(b.commit())
        check = runner.run(pn.begin())
        assert runner.run(check.read_many([K1, K2])) == {
            K1: ("a1",), K2: ("b1",)
        }

    def test_write_skew_is_permitted(self, env):
        """SI famously allows write skew (Section 4.1: SI is not fully
        serializable); document the behaviour with a test."""
        _c, _cm, pn, runner = env
        seed(runner, pn, {K1: (50,), K2: (50,)})
        a = runner.run(pn.begin())
        b = runner.run(pn.begin())
        # Each reads both, then writes the *other* key (disjoint writes).
        assert runner.run(a.read_many([K1, K2])) == {K1: (50,), K2: (50,)}
        assert runner.run(b.read_many([K1, K2])) == {K1: (50,), K2: (50,)}
        runner.run(a.update(K1, (-10,)))
        runner.run(b.update(K2, (-10,)))
        runner.run(a.commit())
        runner.run(b.commit())  # both succeed: the write-skew anomaly

    def test_rollback_after_partial_apply(self, env):
        """A conflicted transaction reverts the updates it had already
        applied (abort path of Section 4.3)."""
        cluster, _cm, pn, runner = env
        keys = [data_key(1, i) for i in range(1, 21)]
        seed(runner, pn, {key: ("init",) for key in keys})
        a = runner.run(pn.begin())
        b = runner.run(pn.begin())
        for key in keys:
            runner.run(a.update(key, ("a",)))
        runner.run(b.update(keys[-1], ("b",)))
        runner.run(b.commit())
        with pytest.raises(TransactionAborted):
            runner.run(a.commit())
        # Every record must be free of a's version.
        for key in keys:
            record, _ = cluster.execute(effects.Get(DATA_SPACE, key))
            assert record.get(a.tid) is None

    def test_insert_insert_conflict_on_same_key(self, env):
        _c, _cm, pn, runner = env
        a = runner.run(pn.begin())
        b = runner.run(pn.begin())
        a.insert(K1, ("a",))
        b.insert(K1, ("b",))
        runner.run(a.commit())
        with pytest.raises(TransactionAborted):
            runner.run(b.commit())


class TestInterleavedExecution:
    def test_concurrent_increments_never_lose_updates(self, env):
        """N transactions increment a counter with retry; the final value
        equals the number of successful commits (LL/SC prevents lost
        updates under arbitrary interleavings)."""
        cluster, cm, pn, runner = env
        seed(runner, pn, {K1: (0,)})

        def increment(txn):
            value = yield from txn.read(K1)
            yield from txn.update(K1, (value[0] + 1,))

        def attempt():
            try:
                yield from pn.run_transaction(increment)
                return True
            except TransactionAborted:
                return False

        results, errors = interleave(
            runner.router, [attempt() for _ in range(12)]
        )
        assert not any(errors)
        succeeded = sum(1 for r in results if r)
        check = runner.run(pn.begin())
        assert runner.run(check.read(K1)) == (succeeded,)
        assert succeeded >= 1

    def test_eager_gc_prunes_old_versions(self, env):
        cluster, cm, pn, runner = env
        seed(runner, pn, {K1: ("v0",)})

        def bump(txn):
            value = yield from txn.read(K1)
            yield from txn.update(K1, (value[0] + "x",))

        for _ in range(10):
            runner.run(pn.run_transaction(bump))
        record, _ = cluster.execute(effects.Get(DATA_SPACE, K1))
        # With no long-running snapshots the lav advances, so eager GC
        # keeps the version chain short.
        assert len(record) <= 2

    def test_gc_respects_old_active_snapshot(self, env):
        cluster, cm, pn, runner = env
        seed(runner, pn, {K1: ("v0",)})
        old_reader = runner.run(pn.begin())  # pins the lav

        def bump(txn):
            value = yield from txn.read(K1)
            yield from txn.update(K1, (value[0] + "x",))

        for _ in range(5):
            runner.run(pn.run_transaction(bump))
        # The old reader must still see its version.
        assert runner.run(old_reader.read(K1)) == ("v0",)
