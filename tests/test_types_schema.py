"""Tests for column types, schemas, and the shared catalog."""

import pytest

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.errors import ConflictError, SchemaError
from repro.sql.keyenc import encode_component, encode_key
from repro.sql.schema import Catalog, Column, TableSchema
from repro.sql.types import ColumnType, coerce
from repro.store.cluster import StorageCluster


class TestColumnType:
    def test_aliases(self):
        assert ColumnType.from_sql("VARCHAR(16)") is ColumnType.TEXT
        assert ColumnType.from_sql("integer") is ColumnType.INT
        assert ColumnType.from_sql("DECIMAL(12,2)") is ColumnType.DECIMAL
        assert ColumnType.from_sql("double") is ColumnType.FLOAT

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            ColumnType.from_sql("BLOB")


class TestCoerce:
    def test_none_passthrough(self):
        assert coerce(None, ColumnType.INT) is None

    def test_int(self):
        assert coerce(5, ColumnType.INT) == 5
        assert coerce(5.0, ColumnType.INT) == 5
        with pytest.raises(SchemaError):
            coerce("x", ColumnType.INT)
        with pytest.raises(SchemaError):
            coerce(True, ColumnType.INT)
        with pytest.raises(SchemaError):
            coerce(5.5, ColumnType.INT)

    def test_float(self):
        assert coerce(5, ColumnType.FLOAT) == 5.0
        assert isinstance(coerce(5, ColumnType.DECIMAL), float)
        with pytest.raises(SchemaError):
            coerce("x", ColumnType.FLOAT)

    def test_text(self):
        assert coerce("abc", ColumnType.TEXT) == "abc"
        with pytest.raises(SchemaError):
            coerce(5, ColumnType.TEXT)

    def test_bool(self):
        assert coerce(True, ColumnType.BOOL) is True
        with pytest.raises(SchemaError):
            coerce(1, ColumnType.BOOL)


class TestTableSchema:
    def make(self):
        return TableSchema(
            1, "t",
            [
                Column("id", ColumnType.INT, nullable=False),
                Column("name", ColumnType.TEXT, default="anon"),
                Column("score", ColumnType.FLOAT),
            ],
            ["id"],
        )

    def test_make_row_defaults(self):
        schema = self.make()
        row = schema.make_row({"id": 1})
        assert row == (1, "anon", None)

    def test_make_row_not_null(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.make_row({"name": "x"})

    def test_make_row_unknown_column(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.make_row({"id": 1, "ghost": 2})

    def test_key_of(self):
        schema = self.make()
        assert schema.key_of((7, "n", 1.0)) == (7,)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(1, "t", [Column("a", ColumnType.INT)] * 2, ["a"])

    def test_pk_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(1, "t", [Column("a", ColumnType.INT)], ["b"])

    def test_row_to_dict(self):
        schema = self.make()
        assert schema.row_to_dict((1, "x", 2.0)) == {
            "id": 1, "name": "x", "score": 2.0
        }


class TestCatalog:
    def test_define_table_creates_pk_index(self):
        catalog = Catalog()
        schema = catalog.define_table(
            "t", [Column("id", ColumnType.INT)], ["id"]
        )
        assert schema.primary_index.unique
        assert schema.primary_index.columns == ("id",)

    def test_table_ids_unique(self):
        catalog = Catalog()
        a = catalog.define_table("a", [Column("x", ColumnType.INT)], ["x"])
        b = catalog.define_table("b", [Column("x", ColumnType.INT)], ["x"])
        assert a.table_id != b.table_id

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.define_table("t", [Column("x", ColumnType.INT)], ["x"])
        with pytest.raises(SchemaError):
            catalog.define_table("T", [Column("x", ColumnType.INT)], ["x"])

    def test_index_on_unknown_column(self):
        catalog = Catalog()
        catalog.define_table("t", [Column("x", ColumnType.INT)], ["x"])
        with pytest.raises(SchemaError):
            catalog.define_index("i", "t", ["nope"])

    def test_drop_table_removes_indexes(self):
        catalog = Catalog()
        catalog.define_table("t", [Column("x", ColumnType.INT)], ["x"])
        catalog.define_index("i", "t", ["x"])
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        assert "i" not in catalog.indexes
        assert "t_pk" not in catalog.indexes

    def test_persistence_roundtrip(self):
        cluster = StorageCluster(n_nodes=1)
        runner = DirectRunner(Router(cluster))
        catalog = Catalog()
        catalog.define_table("t", [Column("x", ColumnType.INT)], ["x"])
        runner.run(catalog.save())
        loaded, version = runner.run(Catalog.load())
        assert loaded.has_table("t")
        assert version == 1
        assert loaded is not catalog  # deep copy

    def test_concurrent_ddl_conflicts(self):
        cluster = StorageCluster(n_nodes=1)
        runner = DirectRunner(Router(cluster))
        catalog = Catalog()
        runner.run(catalog.save())
        a, version_a = runner.run(Catalog.load())
        b, version_b = runner.run(Catalog.load())
        a.define_table("from_a", [Column("x", ColumnType.INT)], ["x"])
        runner.run(a.save_if_version(version_a))
        b.define_table("from_b", [Column("x", ColumnType.INT)], ["x"])
        with pytest.raises(ConflictError):
            runner.run(b.save_if_version(version_b))


class TestKeyEncoding:
    def test_null_sorts_first(self):
        assert encode_component(None) < encode_component(-10**9)
        assert encode_component(None) < encode_component("")

    def test_numbers_before_strings(self):
        assert encode_component(10**9) < encode_component("a")

    def test_int_float_interoperate(self):
        assert encode_component(1) < encode_component(1.5)
        assert encode_component(2.0) == encode_component(2)

    def test_bool_separate_from_int(self):
        assert encode_component(True) < encode_component(0)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            encode_component([1])

    def test_encode_key_tuple(self):
        encoded = encode_key((None, 5, "x"))
        assert encoded == ((0, False), (2, 5), (3, "x"))

    def test_total_order_over_mixed_population(self):
        values = [None, True, False, -3, 0, 2.5, 7, "", "a", "b", b"z"]
        encoded = [encode_component(value) for value in values]
        assert sorted(encoded) is not None  # must not raise
