"""Tests for the YCSB-style workload."""

import random

import pytest

from repro import effects
from repro.api.runner import DirectRunner, Router
from repro.core.commit_manager import CommitManager
from repro.core.processing_node import ProcessingNode
from repro.errors import TransactionAborted
from repro.sql.table import IndexManager
from repro.store.cluster import StorageCluster
from repro.workloads.loader import BulkLoader
from repro.workloads.ycsb import (
    WORKLOAD_A,
    WORKLOAD_C,
    WORKLOAD_E,
    WORKLOADS,
    YcsbClient,
    ZipfianGenerator,
    build_ycsb_catalog,
    populate_ycsb,
)

RECORDS = 200


@pytest.fixture
def env():
    cluster = StorageCluster(n_nodes=2)
    catalog = build_ycsb_catalog()
    indexes = IndexManager()
    loader = BulkLoader(catalog, indexes)
    router = Router(cluster)
    count = effects.run_direct(
        populate_ycsb(catalog, loader, RECORDS), router
    )
    assert count == RECORDS
    cm = CommitManager(0, cluster.execute)
    pn = ProcessingNode(0)
    runner = DirectRunner(Router(cluster, cm, pn_id=0))
    return catalog, indexes, pn, runner


def run_op(env, client, op, args):
    catalog, indexes, pn, runner = env

    def logic(txn):
        return (yield from client.execute(txn, op, args))

    result, _ = runner.run(pn.run_transaction(logic))
    return result


class TestZipfian:
    def test_range(self):
        zipf = ZipfianGenerator(100, seed=1)
        samples = [zipf.next() for _ in range(2000)]
        assert all(0 <= s < 100 for s in samples)

    def test_skew(self):
        zipf = ZipfianGenerator(1000, theta=0.99, seed=2)
        samples = [zipf.next() for _ in range(5000)]
        top_decile = sum(1 for s in samples if s < 100)
        assert top_decile > len(samples) * 0.4  # heavily skewed head

    def test_single_key(self):
        zipf = ZipfianGenerator(1, seed=3)
        assert all(zipf.next() == 0 for _ in range(20))

    def test_invalid(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)


class TestMixes:
    def test_all_defined(self):
        assert set(WORKLOADS) == {"A", "B", "C", "D", "E", "F"}

    def test_weights_sum_to_one(self):
        for mix in WORKLOADS.values():
            total = (mix.read + mix.update + mix.insert + mix.scan
                     + mix.read_modify_write)
            assert total == pytest.approx(1.0)

    def test_pick_distribution(self):
        rng = random.Random(5)
        picks = [WORKLOAD_A.pick(rng) for _ in range(2000)]
        assert 0.4 < picks.count("read") / 2000 < 0.6
        assert 0.4 < picks.count("update") / 2000 < 0.6


class TestOperations:
    def test_read(self, env):
        catalog, indexes, pn, runner = env
        client = YcsbClient(catalog, indexes, RECORDS, WORKLOAD_C, seed=1)
        found = run_op(env, client, "read", {"key": 5})
        assert found is not None
        rid, row = found
        assert row[0] == 5

    def test_update_changes_a_field(self, env):
        catalog, indexes, pn, runner = env
        client = YcsbClient(catalog, indexes, RECORDS, WORKLOAD_A, seed=2)
        before = run_op(env, client, "read", {"key": 7})[1]
        run_op(env, client, "update", {"key": 7})
        after = run_op(env, client, "read", {"key": 7})[1]
        assert before != after
        assert before[0] == after[0] == 7

    def test_scan_returns_ordered_run(self, env):
        catalog, indexes, pn, runner = env
        client = YcsbClient(catalog, indexes, RECORDS, WORKLOAD_E, seed=3)
        rows = run_op(env, client, "scan", {"key": 50, "length": 10})
        keys = [row[0] for _rid, row in rows]
        assert keys == list(range(50, 60))

    def test_insert_uses_fresh_keys(self, env):
        catalog, indexes, pn, runner = env
        client = YcsbClient(catalog, indexes, RECORDS, WORKLOAD_E, seed=4)
        op, args = None, None
        while op != "insert":
            op, args = client.next_operation()
        assert args["key"] >= RECORDS
        run_op(env, client, "insert", args)
        found = run_op(env, client, "read", {"key": args["key"]})
        assert found is not None

    def test_read_modify_write(self, env):
        catalog, indexes, pn, runner = env
        client = YcsbClient(catalog, indexes, RECORDS, WORKLOAD_A, seed=5)
        result = run_op(env, client, "read_modify_write", {"key": 3})
        assert result is not None

    def test_conflicting_updates_one_loses(self, env):
        catalog, indexes, pn, runner = env
        client = YcsbClient(catalog, indexes, RECORDS, WORKLOAD_A, seed=6)

        txn_a = runner.run(pn.begin())
        txn_b = runner.run(pn.begin())
        runner.run(client.execute(txn_a, "update", {"key": 1}))
        runner.run(client.execute(txn_b, "update", {"key": 1}))
        runner.run(txn_a.commit())
        with pytest.raises(TransactionAborted):
            runner.run(txn_b.commit())

    def test_mixed_stream_runs_clean(self, env):
        catalog, indexes, pn, runner = env
        for name, mix in WORKLOADS.items():
            client = YcsbClient(catalog, indexes, RECORDS, mix, seed=hash(name) & 0xFF)
            for _ in range(25):
                op, args = client.next_operation()
                run_op(env, client, op, args)
