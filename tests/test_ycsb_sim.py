"""Tests for the simulated YCSB deployment."""

import pytest

from repro.bench.config import TellConfig
from repro.bench.ycsb_sim import SimulatedYcsb


def config(**overrides):
    defaults = dict(
        processing_nodes=1, storage_nodes=2, threads_per_pn=6,
        mix="A", duration_us=60_000.0, warmup_us=10_000.0, seed=4,
    )
    defaults.update(overrides)
    return TellConfig(**defaults)


class TestSimulatedYcsb:
    def test_runs_and_commits(self):
        deployment = SimulatedYcsb(config(), record_count=500)
        deployment.load()
        metrics = deployment.run()
        assert metrics.total_committed > 100
        assert set(metrics.committed) <= {"read", "update", "insert",
                                          "scan", "read_modify_write"}

    def test_workload_c_is_conflict_free(self):
        deployment = SimulatedYcsb(config(mix="C"), record_count=500)
        deployment.load()
        metrics = deployment.run()
        assert metrics.total_conflicts == 0

    def test_update_heavy_conflicts_on_hot_keys(self):
        deployment = SimulatedYcsb(
            config(mix="A", threads_per_pn=12), record_count=50,
        )
        deployment.load()
        metrics = deployment.run()
        assert metrics.total_conflicts > 0  # zipfian head contention

    def test_scales_with_processing_nodes(self):
        single = SimulatedYcsb(config(), record_count=5000)
        single.load()
        tps_one = single.run().tps
        quad = SimulatedYcsb(config(processing_nodes=4), record_count=5000)
        quad.load()
        tps_four = quad.run().tps
        assert tps_four > tps_one * 2.2

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            SimulatedYcsb(config(mix="standard"))

    def test_quiesce_after_run(self):
        deployment = SimulatedYcsb(config(mix="F"), record_count=500)
        deployment.load()
        deployment.run()
        deployment.quiesce()
        # every version in the store belongs to a completed transaction
        from repro import effects

        manager = deployment.commit_managers[0]
        rows = deployment.cluster.execute(effects.Scan("data", None, None))
        for _key, record, _version in rows:
            for version in record.versions:
                assert manager.completed.contains(version.tid)
