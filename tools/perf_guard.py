#!/usr/bin/env python
"""CI perf guard: compare ``tpcc_e2e`` against the committed baseline.

Re-runs the end-to-end TPC-C benchmark and checks it against the
``after`` entry in ``BENCH_perf.json``:

* **Digest** (hard gate): the run's :meth:`TxnMetrics.digest` must match
  the baseline byte for byte.  The benchmark is a deterministic
  simulation, so any divergence is a behaviour change, not noise --
  exactly what the dispatch-pipeline refactor must not introduce.
* **Throughput** (soft gate, ``--tolerance``): the best-of-``--repeat``
  wall-clock txns/s must stay within the tolerance band below the
  baseline value.  Single runs on shared CI runners swing by 20%+
  (locally observed 273..345 txns/s for the same build), which is why
  the guard takes the *best* of several runs rather than one sample.

With ``--scale-smoke`` the guard instead runs the smallest ``scale``
suite configuration (see :mod:`repro.bench.scale`) and checks it against
the ``scale`` section of the report: digest byte-match (hard gate) plus
the same throughput window on host events/s (soft gate).  This is the CI
job that keeps the 64-256 node path honest without paying for the full
sweep on every PR.

Usage::

    python tools/perf_guard.py                     # BENCH_perf.json, best-of-3, -10%
    python tools/perf_guard.py --repeat 5 --tolerance 0.15
    python tools/perf_guard.py --scale-smoke       # smallest scale config
"""

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.perfsuite import run_suite  # noqa: E402

BENCHMARK = "tpcc_e2e"


def run_scale_smoke(args):
    """Digest + events/s gate on the smallest scale-suite deployment."""
    from repro.bench.scale import SMOKE_LABELS, run_scale_suite

    label = SMOKE_LABELS[0]
    with open(args.baseline) as handle:
        points = json.load(handle).get("scale", {}).get("points", [])
    baseline = next((p for p in points if p["label"] == label), None)
    if baseline is None:
        print(f"perf-guard: FAIL: no '{label}' point in {args.baseline} "
              f"(run `python -m repro.bench --suite scale --smoke` and "
              f"commit the report)", file=sys.stderr)
        return 1

    print(f"perf-guard: scale-smoke '{label}' best-of-{args.repeat} "
          f"vs {args.baseline} ({baseline['events_per_s']:,.0f} events/s)")
    best = None
    for _ in range(max(1, args.repeat)):
        result = run_scale_suite([label], verbose=False)[0]
        if best is None or result["events_per_s"] > best["events_per_s"]:
            best = result

    failures = []
    if best["digest"] != baseline["digest"]:
        failures.append(
            f"digest mismatch: {best['digest']} != baseline "
            f"{baseline['digest']} -- the scale-path behaviour changed"
        )
    floor = (1.0 - args.tolerance) * baseline["events_per_s"]
    if best["events_per_s"] < floor:
        failures.append(
            f"host throughput {best['events_per_s']:,.0f} events/s below "
            f"floor {floor:,.0f} ({args.tolerance:.0%} under baseline "
            f"{baseline['events_per_s']:,.0f})"
        )
    if failures:
        for failure in failures:
            print(f"perf-guard: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"perf-guard: OK: {best['events_per_s']:,.0f} events/s "
          f"(floor {floor:,.0f}), digest matches")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_perf.json",
                        help="baseline report (default: BENCH_perf.json)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs to take the best of (default: 3)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default: 0.10)")
    parser.add_argument("--scale-smoke", action="store_true",
                        help="gate the smallest scale-suite config instead "
                             "of tpcc_e2e (digest + events/s window against "
                             "the report's 'scale' section)")
    args = parser.parse_args(argv)

    if args.scale_smoke:
        return run_scale_smoke(args)

    with open(args.baseline) as handle:
        baseline = json.load(handle)[
            "benchmarks"][BENCHMARK]["after"]

    print(f"perf-guard: {BENCHMARK} best-of-{args.repeat} "
          f"vs {args.baseline} ({baseline['value']:,.1f} {baseline['unit']})")
    result = run_suite([BENCHMARK], repeat=args.repeat)[BENCHMARK]

    failures = []
    if result.get("digest") != baseline.get("digest"):
        failures.append(
            f"digest mismatch: {result.get('digest')} != baseline "
            f"{baseline.get('digest')} -- the simulated behaviour changed"
        )
    floor = (1.0 - args.tolerance) * baseline["value"]
    if result["value"] < floor:
        failures.append(
            f"throughput {result['value']:,.1f} {result['unit']} below "
            f"floor {floor:,.1f} ({args.tolerance:.0%} under baseline "
            f"{baseline['value']:,.1f})"
        )

    if failures:
        for failure in failures:
            print(f"perf-guard: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"perf-guard: OK: {result['value']:,.1f} {result['unit']} "
          f"(floor {floor:,.1f}), digest matches")
    return 0


if __name__ == "__main__":
    sys.exit(main())
