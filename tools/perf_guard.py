#!/usr/bin/env python
"""CI perf guard: compare ``tpcc_e2e`` against the committed baseline.

Re-runs the end-to-end TPC-C benchmark and checks it against the
``after`` entry in ``BENCH_perf.json``:

* **Digest** (hard gate): the run's :meth:`TxnMetrics.digest` must match
  the baseline byte for byte.  The benchmark is a deterministic
  simulation, so any divergence is a behaviour change, not noise --
  exactly what the dispatch-pipeline refactor must not introduce.
* **Throughput** (soft gate, ``--tolerance``): the best-of-``--repeat``
  wall-clock txns/s must stay within the tolerance band below the
  baseline value.  Single runs on shared CI runners swing by 20%+
  (locally observed 273..345 txns/s for the same build), which is why
  the guard takes the *best* of several runs rather than one sample.

Usage::

    python tools/perf_guard.py                     # BENCH_perf.json, best-of-3, -10%
    python tools/perf_guard.py --repeat 5 --tolerance 0.15
"""

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.perfsuite import run_suite  # noqa: E402

BENCHMARK = "tpcc_e2e"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="BENCH_perf.json",
                        help="baseline report (default: BENCH_perf.json)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs to take the best of (default: 3)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default: 0.10)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)[
            "benchmarks"][BENCHMARK]["after"]

    print(f"perf-guard: {BENCHMARK} best-of-{args.repeat} "
          f"vs {args.baseline} ({baseline['value']:,.1f} {baseline['unit']})")
    result = run_suite([BENCHMARK], repeat=args.repeat)[BENCHMARK]

    failures = []
    if result.get("digest") != baseline.get("digest"):
        failures.append(
            f"digest mismatch: {result.get('digest')} != baseline "
            f"{baseline.get('digest')} -- the simulated behaviour changed"
        )
    floor = (1.0 - args.tolerance) * baseline["value"]
    if result["value"] < floor:
        failures.append(
            f"throughput {result['value']:,.1f} {result['unit']} below "
            f"floor {floor:,.1f} ({args.tolerance:.0%} under baseline "
            f"{baseline['value']:,.1f})"
        )

    if failures:
        for failure in failures:
            print(f"perf-guard: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"perf-guard: OK: {result['value']:,.1f} {result['unit']} "
          f"(floor {floor:,.1f}), digest matches")
    return 0


if __name__ == "__main__":
    sys.exit(main())
