#!/usr/bin/env python
"""Run the simulation-stack microbenchmarks and write BENCH_perf.json.

Thin wrapper around :mod:`repro.bench.perfsuite` that works from a source
checkout without installation::

    python tools/perf_report.py                      # full suite -> BENCH_perf.json
    python tools/perf_report.py --smoke -o -         # CI smoke, print to stdout
    python tools/perf_report.py --baseline old.json  # diff against a saved run

After ``pip install -e .`` the same CLI is available as ``repro-perf``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.perfsuite import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
